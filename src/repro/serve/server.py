"""The online K-NN query server: admission, micro-batching, deadlines.

:class:`KNNServer` turns the batched query engine - a synchronous library
call - into an online service shape: many client threads each submit one
``(query_vector, k, ef, deadline)`` request and get a future back; the
server coalesces concurrent requests into micro-batches, executes them on
the underlying :class:`~repro.apps.search.GraphSearchIndex`, and resolves
each future individually.  Around that core sit the production envelope
pieces:

* **admission control** - a bounded queue; past ``admission.queue_limit``,
  :meth:`KNNServer.submit` raises :class:`~repro.errors.ServerOverloaded`
  synchronously (backpressure beats unbounded queueing);
* **deadline enforcement** - requests whose deadline expires while queued
  are dropped *before* scoring; results that complete past the deadline
  are returned as :class:`~repro.errors.DeadlineExceeded`, never as late
  successes;
* **graceful degradation** - sustained queue growth sheds the beam width
  ``ef`` (see :mod:`repro.serve.degrade`), trading a little recall for a
  lot of latency, mirroring the build-time strategy crossover;
* **result caching** - an optional LRU keyed on quantized query bytes
  (:mod:`repro.serve.cache`); hits resolve at submit time without ever
  touching the engine.

Configuration is the frozen, sectioned :class:`ServeConfig`
(:class:`AdmissionPolicy` / :class:`DeadlinePolicy` / :class:`CachePolicy`
/ :class:`~repro.serve.degrade.ShedPolicy`); the historical flat keyword
surface still constructs for one release with a ``DeprecationWarning``.
The server implements the :class:`~repro.serve.client.SearchClient`
protocol, so callers written against the protocol can swap it for the
sharded :class:`~repro.serve.cluster.ClusterClient` unchanged.

Everything is observable: ``serve/*`` metrics (counters, queue-depth and
shed-level gauges, p50/p95/p99 latency quantile histograms) and
``SERVE_*`` profiling hook events.
"""

from __future__ import annotations

import dataclasses
import threading
import time
import warnings
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from repro.errors import (
    ConfigurationError,
    DeadlineExceeded,
    ServerClosed,
    ServerOverloaded,
)
from repro.obs import Events, Observability
from repro.serve.cache import ResultCache
from repro.serve.client import SearchResult
from repro.serve.degrade import DegradationController, ShedPolicy
from repro.serve.queue import AdmissionQueue
from repro.serve.scheduler import MicroBatcher, Request, resolve
from repro.utils.validation import (
    check_positive_int,
    check_query_vector,
)

#: registry namespace the serving metrics emit under
SERVE_METRICS_PREFIX = "serve/"

#: deprecated alias of :class:`~repro.serve.client.SearchResult`
QueryResult = SearchResult


@dataclass(frozen=True)
class AdmissionPolicy:
    """Micro-batching and backpressure knobs.

    Attributes
    ----------
    max_batch:
        Flush a micro-batch at this many coalesced requests.
    max_wait_ms:
        ... or when the oldest request of the forming batch has waited
        this long, whichever comes first.  The knob trades per-request
        latency floor against batch width.
    queue_limit:
        Admission high-water mark: :meth:`KNNServer.submit` raises
        :class:`~repro.errors.ServerOverloaded` when this many requests
        are already queued.
    n_workers:
        Execution pool size (see :class:`~repro.serve.scheduler.MicroBatcher`).
    """

    max_batch: int = 64
    max_wait_ms: float = 2.0
    queue_limit: int = 256
    n_workers: int = 1

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "max_batch", check_positive_int(self.max_batch, "max_batch"))
        object.__setattr__(
            self, "queue_limit",
            check_positive_int(self.queue_limit, "queue_limit"))
        object.__setattr__(
            self, "n_workers", check_positive_int(self.n_workers, "n_workers"))
        if self.max_wait_ms < 0:
            raise ConfigurationError(
                f"max_wait_ms must be >= 0, got {self.max_wait_ms}"
            )
        object.__setattr__(self, "max_wait_ms", float(self.max_wait_ms))


@dataclass(frozen=True)
class DeadlinePolicy:
    """Deadline defaults.

    ``default_ms`` is applied to requests that do not carry their own
    deadline (``None`` = no deadline).
    """

    default_ms: float | None = None

    def __post_init__(self) -> None:
        if self.default_ms is not None and self.default_ms <= 0:
            raise ConfigurationError(
                f"deadline default_ms must be > 0, got {self.default_ms}"
            )


@dataclass(frozen=True)
class CachePolicy:
    """Result-cache knobs: LRU ``size`` (0 disables) and the quantization
    grid ``decimals`` of the cache key (see
    :class:`~repro.serve.cache.ResultCache`)."""

    size: int = 0
    decimals: int = 6

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ConfigurationError(
                f"cache size must be >= 0, got {self.size}"
            )
        object.__setattr__(
            self, "decimals", check_positive_int(self.decimals, "decimals"))


@dataclass(frozen=True)
class QuantizationPolicy:
    """Compressed-tier knobs the serving stack forwards to its indexes.

    ``mode`` is a :func:`repro.core.quant.parse_quantization` spec
    (``"none"``, ``"sq8"``, ``"pq<M>"``); ``rerank`` is the
    full-precision rerank width (``0`` = the whole beam).  The policy
    maps 1:1 onto :class:`~repro.apps.search.SearchConfig` fields - see
    :meth:`to_search_fields` - so servers, cluster shards and the CLI
    all build quantized stores the same way.
    """

    mode: str = "none"
    rerank: int = 0

    def __post_init__(self) -> None:
        from repro.core.quant import parse_quantization

        # store the canonical spec, not the raw string: downstream spec
        # comparisons (SearchConfig, persisted stores) are string equality
        object.__setattr__(self, "mode", parse_quantization(self.mode).spec)
        object.__setattr__(self, "rerank", int(self.rerank))
        if self.rerank < 0:
            raise ConfigurationError(
                f"quant rerank must be >= 0, got {self.rerank}"
            )

    def to_search_fields(self) -> dict[str, Any]:
        """The :class:`~repro.apps.search.SearchConfig` kwargs this maps to."""
        return {"quantization": self.mode, "rerank": self.rerank}


#: deprecated flat kwarg -> (section field, field inside the section)
_FLAT_FIELDS: dict[str, tuple[str, str]] = {
    "max_batch": ("admission", "max_batch"),
    "max_wait_ms": ("admission", "max_wait_ms"),
    "queue_limit": ("admission", "queue_limit"),
    "n_workers": ("admission", "n_workers"),
    "default_deadline_ms": ("deadline", "default_ms"),
    "cache_size": ("cache", "size"),
    "cache_decimals": ("cache", "decimals"),
}

_SECTION_TYPES = {
    "admission": AdmissionPolicy,
    "deadline": DeadlinePolicy,
    "cache": CachePolicy,
    "quant": QuantizationPolicy,
}


@dataclass(frozen=True, init=False)
class ServeConfig:
    """Serving parameters, grouped into frozen policy sections.

    Attributes
    ----------
    admission:
        Micro-batching + backpressure (:class:`AdmissionPolicy`).
    deadline:
        Deadline defaults (:class:`DeadlinePolicy`).
    cache:
        Result caching (:class:`CachePolicy`).
    quant:
        Compressed vector tier (:class:`QuantizationPolicy`) forwarded
        to the indexes the stack builds.
    shed:
        The degradation policy (:class:`~repro.serve.degrade.ShedPolicy`).
    default_k:
        ``k`` used when a request does not specify one.
    ef:
        Full-quality beam width served at (``None`` = the index's
        configured ``ef``).

    The pre-redesign flat keywords (``max_batch``, ``max_wait_ms``,
    ``queue_limit``, ``n_workers``, ``default_deadline_ms``,
    ``cache_size``, ``cache_decimals``) still construct - applied on top
    of the matching section - but emit a ``DeprecationWarning`` and will
    be removed next release; the same names remain readable as
    properties.  ``from_dict``/``as_dict`` round-trip the nested form for
    CLI/JSON use.
    """

    admission: AdmissionPolicy
    deadline: DeadlinePolicy
    cache: CachePolicy
    quant: QuantizationPolicy
    shed: ShedPolicy
    default_k: int
    ef: int | None

    def __init__(
        self,
        admission: AdmissionPolicy | None = None,
        deadline: DeadlinePolicy | None = None,
        cache: CachePolicy | None = None,
        quant: QuantizationPolicy | None = None,
        shed: ShedPolicy | None = None,
        default_k: int = 10,
        ef: int | None = None,
        **flat: Any,
    ) -> None:
        if flat:
            known = sorted(set(flat) & set(_FLAT_FIELDS))
            unknown = sorted(set(flat) - set(_FLAT_FIELDS))
            if unknown:
                raise TypeError(
                    f"unknown ServeConfig argument(s) {unknown}; "
                    f"sections: admission/deadline/cache/shed"
                )
            warnings.warn(
                f"flat ServeConfig keyword(s) {known} are deprecated; pass "
                f"the admission=/deadline=/cache= sections instead "
                f"(docs/serving.md has the migration table)",
                DeprecationWarning, stacklevel=2,
            )
        sections: dict[str, Any] = {
            "admission": admission, "deadline": deadline, "cache": cache,
            "quant": quant,
        }
        overrides: dict[str, dict[str, Any]] = {
            name: {} for name in _SECTION_TYPES
        }
        for key, value in flat.items():
            section, field_name = _FLAT_FIELDS[key]
            overrides[section][field_name] = value
        for name, cls_ in _SECTION_TYPES.items():
            current = sections[name]
            if current is None:
                current = cls_(**overrides[name])
            elif overrides[name]:
                current = dataclasses.replace(current, **overrides[name])
            object.__setattr__(self, name, current)
        object.__setattr__(self, "shed", shed or ShedPolicy())
        object.__setattr__(
            self, "default_k", check_positive_int(default_k, "default_k"))
        object.__setattr__(
            self, "ef", None if ef is None else check_positive_int(ef, "ef"))

    # -- deprecated flat read surface (kept one release) -----------------------

    @property
    def max_batch(self) -> int:
        return self.admission.max_batch

    @property
    def max_wait_ms(self) -> float:
        return self.admission.max_wait_ms

    @property
    def queue_limit(self) -> int:
        return self.admission.queue_limit

    @property
    def n_workers(self) -> int:
        return self.admission.n_workers

    @property
    def default_deadline_ms(self) -> float | None:
        return self.deadline.default_ms

    @property
    def cache_size(self) -> int:
        return self.cache.size

    @property
    def cache_decimals(self) -> int:
        return self.cache.decimals

    # -- JSON / CLI round-trip --------------------------------------------------

    def as_dict(self) -> dict[str, Any]:
        """Nested plain-dict form (the inverse of :meth:`from_dict`)."""
        return {
            "admission": dataclasses.asdict(self.admission),
            "deadline": dataclasses.asdict(self.deadline),
            "cache": dataclasses.asdict(self.cache),
            "quant": dataclasses.asdict(self.quant),
            "shed": dataclasses.asdict(self.shed),
            "default_k": self.default_k,
            "ef": self.ef,
        }

    @classmethod
    def from_dict(cls, mapping: Mapping[str, Any]) -> "ServeConfig":
        """Build a config from the nested dict form.

        Flat legacy keys are accepted too (forwarded through the
        deprecation path), so configs serialized before the redesign
        still load.
        """
        data = dict(mapping)
        kwargs: dict[str, Any] = {}
        for name, cls_ in _SECTION_TYPES.items():
            if name in data:
                section = data.pop(name)
                kwargs[name] = (
                    section if isinstance(section, cls_) else cls_(**section)
                )
        if "shed" in data:
            shed = data.pop("shed")
            kwargs["shed"] = (
                shed if isinstance(shed, ShedPolicy) else ShedPolicy(**shed)
            )
        kwargs.update(data)
        return cls(**kwargs)


class KNNServer:
    """Micro-batching online query service over a fitted search index.

    Usage::

        index = GraphSearchIndex.build(points, k=16)
        config = ServeConfig(admission=AdmissionPolicy(max_batch=64))
        with KNNServer(index, config) as server:
            fut = server.submit(query_vector, k=10, deadline_ms=50.0)
            result = fut.result()          # SearchResult (or raises)

    The index must expose ``search(queries, k, *, ef=None)`` over a fixed
    dimensionality ``dim`` - :class:`~repro.apps.search.GraphSearchIndex`
    is the intended engine.  One server instance is safe to submit to
    from any number of threads, and implements the
    :class:`~repro.serve.client.SearchClient` protocol.
    """

    def __init__(
        self,
        index: Any,
        config: ServeConfig | None = None,
        *,
        obs: Observability | None = None,
        **flat: Any,
    ) -> None:
        if flat:
            if config is not None:
                raise ConfigurationError(
                    "pass either a ServeConfig or flat keyword arguments, "
                    "not both"
                )
            # ServeConfig emits the DeprecationWarning for the flat names
            config = ServeConfig(**flat)
        self.index = index
        self.config = config or ServeConfig()
        self.obs = obs
        self._dim = int(index.dim)
        base_ef = self.config.ef
        if base_ef is None:
            base_ef = int(getattr(getattr(index, "config", None), "ef", 32))
        self._base_ef = base_ef
        cache_cfg = self.config.cache
        self.cache: ResultCache | None = (
            ResultCache(cache_cfg.size, cache_cfg.decimals)
            if cache_cfg.size > 0 else None
        )
        self.degradation = DegradationController(self.config.shed)
        self._queue: AdmissionQueue | None = None
        self._batcher: MicroBatcher | None = None
        self._accepting = False
        self._lock = threading.Lock()  # guards counters + obs emission
        self.counters: dict[str, int] = {
            "submitted": 0, "accepted": 0, "completed": 0, "rejected": 0,
            "timeout_queued": 0, "timeout_late": 0, "cache_hits": 0,
            "shed_served": 0, "batches": 0, "cancelled": 0,
        }
        self._latencies_ok: list[float] = []

    # -- lifecycle -------------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._accepting

    @property
    def dim(self) -> int:
        """Query dimensionality (SearchClient protocol)."""
        return self._dim

    @property
    def default_ef(self) -> int:
        """The full-quality beam width served by default (protocol)."""
        return self._base_ef

    def start(self) -> "KNNServer":
        if self._accepting:
            raise ConfigurationError("server already started")
        adm = self.config.admission
        self._queue = AdmissionQueue(adm.queue_limit)
        self._batcher = MicroBatcher(
            self._queue, self._execute,
            max_batch=adm.max_batch, max_wait_s=adm.max_wait_ms / 1000.0,
            n_workers=adm.n_workers,
        )
        self._batcher.start()
        self._accepting = True
        self._emit(Events.SERVE_START, max_batch=adm.max_batch,
                   max_wait_ms=adm.max_wait_ms, queue_limit=adm.queue_limit,
                   n_workers=adm.n_workers, ef=self._base_ef)
        return self

    def stop(self, drain: bool = True, timeout: float | None = None) -> None:
        """Stop accepting and shut the batcher down.

        With ``drain=True`` (default) every queued request is still
        executed before the batcher exits; with ``drain=False`` queued
        requests fail with :class:`~repro.errors.ServerClosed`.
        """
        if self._queue is None:
            return
        self._accepting = False
        queue, batcher = self._queue, self._batcher
        if not drain:
            dropped = queue.drain()
            MicroBatcher.fail_all(
                dropped, ServerClosed("server stopped before execution")
            )
            self._count("cancelled", len(dropped))
        queue.close()
        if batcher is not None:
            batcher.stop(timeout=timeout)
        self._queue = None
        self._batcher = None
        self._emit(Events.SERVE_STOP, **self.counters)

    def close(self) -> None:
        """SearchClient protocol alias of :meth:`stop` (graceful drain)."""
        self.stop()

    def __enter__(self) -> "KNNServer":
        if not self._accepting:
            self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- client API ------------------------------------------------------------

    def submit(
        self,
        query: np.ndarray,
        k: int | None = None,
        *,
        ef: int | None = None,
        deadline_ms: float | None = None,
    ) -> Future:
        """Submit one query vector; returns a future.

        The future resolves to a :class:`~repro.serve.client.SearchResult`,
        or raises :class:`~repro.errors.DeadlineExceeded` /
        :class:`~repro.errors.ServerClosed`.  Admission failures are
        synchronous: :class:`~repro.errors.ServerOverloaded` is raised
        *here*, not set on a future, so callers feel backpressure
        immediately.
        """
        queue = self._queue
        if not self._accepting or queue is None:
            raise ServerClosed("submit() on a stopped server")
        cfg = self.config
        q = check_query_vector(query, self._dim, "query")
        k = cfg.default_k if k is None else check_positive_int(k, "k")
        ef = self._base_ef if ef is None else check_positive_int(ef, "ef")
        if deadline_ms is None:
            deadline_ms = cfg.deadline.default_ms
        now = time.monotonic()
        deadline = None if deadline_ms is None else now + deadline_ms / 1000.0

        self._count("submitted")

        req = Request(query=q, k=k, ef=ef, deadline=deadline, submitted=now)
        if self.cache is not None:
            # the lookup key carries the *current* epoch: after a mutable
            # index flips, entries computed against older graphs become
            # structurally unreachable (zero stale hits by construction)
            epoch = int(getattr(self._engine_view(), "epoch", 0))
            req.cache_key = self.cache.key(q, k, ef, epoch)
            hit = self.cache.get(req.cache_key)
            if hit is not None:
                ids, dists, served_ef = hit
                self._count("cache_hits")
                self._count("completed")
                self._emit(Events.SERVE_CACHE_HIT, k=k, ef=ef, epoch=epoch)
                self._observe_latency(time.monotonic() - now)
                resolve(req.future, SearchResult(
                    ids=ids.copy(), dists=dists.copy(), served_ef=served_ef,
                    from_cache=True, shard_fanout=1, batch_size=0,
                    latency_ms=(time.monotonic() - now) * 1000.0,
                    epoch=epoch,
                ))
                return req.future

        if not queue.offer(req):
            depth = queue.depth()
            self._count("rejected")
            self._emit(Events.SERVE_REQUEST_REJECTED, queue_depth=depth,
                       limit=cfg.admission.queue_limit)
            raise ServerOverloaded(
                f"admission queue full ({depth}/{cfg.admission.queue_limit} "
                f"pending); retry with backoff", queue_depth=depth,
            )
        self._count("accepted")
        self._gauge("queue_depth", queue.depth())
        return req.future

    def query(
        self,
        query: np.ndarray,
        k: int | None = None,
        *,
        ef: int | None = None,
        deadline_ms: float | None = None,
        timeout: float | None = None,
    ) -> SearchResult:
        """Blocking convenience wrapper: ``submit(...).result()``."""
        return self.submit(query, k, ef=ef, deadline_ms=deadline_ms) \
            .result(timeout=timeout)

    # -- batch execution (worker threads) --------------------------------------

    def _execute(self, batch: list[Request]) -> None:
        now = time.monotonic()
        queue = self._queue
        depth = queue.depth() if queue is not None else 0

        # deadline enforcement, part 1: drop requests that expired while
        # queued before spending any engine work on them
        live: list[Request] = []
        expired = 0
        for req in batch:
            if req.expired(now):
                expired += 1
                req.future.set_exception(DeadlineExceeded(
                    f"deadline expired while queued "
                    f"({(now - req.submitted) * 1000.0:.1f}ms in queue)"
                ))
            else:
                live.append(req)
        if expired:
            self._count("timeout_queued", expired)
            self._emit(Events.SERVE_REQUEST_TIMEOUT, phase="queued",
                       count=expired)
        if not live:
            return

        # degradation: one queue-pressure observation per flush
        old_level = self.degradation.level
        level = self.degradation.observe(
            depth, self.config.admission.queue_limit
        )
        if level != old_level:
            self._gauge("shed_level", level)
            self._emit(Events.SERVE_SHED_CHANGE, old_level=old_level,
                       new_level=level, queue_depth=depth)

        # group by (k, requested ef): each group is one engine call
        groups: dict[tuple[int, int], list[Request]] = {}
        for req in live:
            groups.setdefault((req.k, req.ef), []).append(req)
        for (k, ef), reqs in groups.items():
            self._run_group(k, ef, reqs, depth)

    def _engine_view(self) -> Any:
        """The engine to run searches against.

        A mutable index exposes its current epoch-stamped snapshot as a
        ``snapshot`` attribute; pinning that one reference for a whole
        micro-batch guarantees every request of the batch is answered
        from one consistent graph even while the writer flips epochs
        underneath.  (``DynamicKNNG.snapshot`` is a *method* - the
        callable check keeps the server treating it as a plain engine.)
        Static indexes are their own view, at implicit epoch 0.
        """
        view = getattr(self.index, "snapshot", None)
        if view is None or callable(view):
            return self.index
        return view

    def _run_group(self, k: int, ef: int, reqs: list[Request],
                   depth: int) -> None:
        served_ef = self.degradation.effective_ef(ef)
        shed = served_ef < ef
        qmat = np.stack([r.query for r in reqs], axis=0)
        # one snapshot for the whole micro-batch: epoch flips between
        # here and resolution cannot tear this group's results
        view = self._engine_view()
        epoch = int(getattr(view, "epoch", 0))
        self._emit(Events.SERVE_BATCH_BEFORE, batch=len(reqs), k=k,
                   ef=served_ef, shed=shed, queue_depth=depth, epoch=epoch)
        t0 = time.monotonic()
        for req in reqs:
            self._observe_hist("queue_wait_seconds", t0 - req.submitted)
        ids, dists = view.search(qmat, k, ef=served_ef)
        seconds = time.monotonic() - t0
        self._count("batches")
        if shed:
            self._count("shed_served", len(reqs))
        self._observe_hist("batch_seconds", seconds)
        self._observe_hist("batch_size", len(reqs))
        self._emit(Events.SERVE_BATCH_AFTER, batch=len(reqs), k=k,
                   ef=served_ef, shed=shed, seconds=seconds)

        now = time.monotonic()
        late = 0
        for i, req in enumerate(reqs):
            # deadline enforcement, part 2: a result completed past its
            # deadline is a timeout, never a late success
            if req.expired(now):
                late += 1
                req.future.set_exception(DeadlineExceeded(
                    f"execution finished {(now - req.deadline) * 1000.0:.1f}ms "
                    f"past the deadline"
                ))
                continue
            if self.cache is not None and req.cache_key is not None and not shed:
                # store under the epoch actually *served*, not the one the
                # key was cut with at submit time - if a flip landed in
                # between, the entry must be findable by post-flip lookups
                # and unreachable from pre-flip ones
                self.cache.put(
                    self.cache.key(req.query, k, ef, epoch),
                    (ids[i], dists[i], served_ef),
                )
            latency = now - req.submitted
            self._observe_latency(latency)
            self._count("completed")
            resolve(req.future, SearchResult(
                ids=ids[i], dists=dists[i], served_ef=served_ef,
                from_cache=False, shard_fanout=1,
                latency_ms=latency * 1000.0, batch_size=len(reqs),
                epoch=epoch,
            ))
        if late:
            self._count("timeout_late", late)
            self._emit(Events.SERVE_REQUEST_TIMEOUT, phase="late", count=late)

    # -- observability ---------------------------------------------------------

    def _count(self, name: str, n: int = 1) -> None:
        """Bump a serving counter, mirrored into the obs registry.

        The mirror is what makes shed/reject/timeout accounting visible
        in an exported trace (``serve/<name>`` counters), not just in
        :meth:`stats`.
        """
        with self._lock:
            self.counters[name] += n
            if self.obs is not None:
                self.obs.metrics.counter(SERVE_METRICS_PREFIX + name).inc(n)

    def _emit(self, event: str, **payload: Any) -> None:
        if self.obs is not None:
            self.obs.hooks.emit(event, **payload)

    def _gauge(self, name: str, value: float) -> None:
        if self.obs is not None:
            with self._lock:
                self.obs.metrics.gauge(SERVE_METRICS_PREFIX + name).set(value)

    def _observe_hist(self, name: str, value: float) -> None:
        if self.obs is not None:
            with self._lock:
                self.obs.metrics.histogram(
                    SERVE_METRICS_PREFIX + name
                ).observe(value)

    def _observe_latency(self, seconds: float) -> None:
        with self._lock:
            self._latencies_ok.append(seconds)
            if len(self._latencies_ok) > 100_000:
                del self._latencies_ok[: len(self._latencies_ok) // 2]
        if self.obs is not None:
            with self._lock:
                self.obs.metrics.quantile_histogram(
                    SERVE_METRICS_PREFIX + "latency_seconds"
                ).observe(seconds)

    def latency_percentiles(self) -> dict[str, float]:
        """p50/p95/p99 (milliseconds) of successful responses so far."""
        with self._lock:
            lat = sorted(self._latencies_ok)
        if not lat:
            return {"p50": 0.0, "p95": 0.0, "p99": 0.0}
        def pct(p: float) -> float:
            idx = min(len(lat) - 1, int(round(p * (len(lat) - 1))))
            return lat[idx] * 1000.0
        return {"p50": pct(0.50), "p95": pct(0.95), "p99": pct(0.99)}

    def stats(self) -> dict[str, Any]:
        """A snapshot of the serving counters, queue state and latencies."""
        queue = self._queue
        with self._lock:
            counters = dict(self.counters)
        out: dict[str, Any] = {
            "engine": "knn-server",
            **counters,
            "timeouts": counters["timeout_queued"] + counters["timeout_late"],
            "queue_depth": queue.depth() if queue is not None else 0,
            "queue_limit": self.config.admission.queue_limit,
            "shed_level": self.degradation.level,
            "shed_transitions": self.degradation.transitions,
            "latency_ms": self.latency_percentiles(),
        }
        if self.cache is not None:
            out["cache"] = self.cache.stats()
        return out
