"""Sharded multi-replica serving: scatter, per-shard search, packed-key merge.

The single-process :class:`~repro.serve.server.KNNServer` tops out at one
engine on one index; the ROADMAP's "millions of users" target needs the
dataset *partitioned*.  This module applies the subgraph-division-and-merge
decomposition of the large-scale GPU KNNG literature (and GGNN's multi-GPU
sharding) to the serving path:

* **partition** - points are split into ``S`` contiguous shards by
  :func:`repro.core.sharding.shard_partition`; shard ``s`` builds its own
  :class:`~repro.apps.search.GraphSearchIndex` over rows ``[lo_s, hi_s)``;
* **replicate** - each shard runs ``R`` replica workers (forked processes
  by default, in-process "thread" replicas for tests and fork-less
  platforms).  Replicas of a shard are forked from the *same* built index,
  so every replica computes the identical function of ``(queries, k, ef)``
  - which is why failover can never change an answer, only its latency;
* **route** - a :class:`ShardRouter` scatter-gathers every micro-batch
  across one healthy replica per shard (health = heartbeats + in-band RPC
  failures; routing prefers idle, low-EWMA-latency replicas; dead replicas
  are ejected and readmitted when they answer pings again);
* **merge** - per-shard top-k lists come back with local ids already
  shifted to global (monotone ``global = local + lo_s``), and
  :func:`merge_topk` reduces them by the same packed ``(dist, id)``
  int64 keys the engine's beams use.  Because the shard partition is
  contiguous, the merged ordering *is* the flat index's ordering: with an
  exhaustive beam (``ef >= n``) the cluster's answers are bitwise
  identical to a single flat :class:`~repro.apps.search.GraphSearchIndex`
  (the parity tests assert exactly that).

Two per-shard ``ef`` policies (:attr:`ClusterConfig.shard_ef_policy`):
``"full"`` sends the caller's ``ef`` to every shard - the parity mode -
while ``"scaled"`` sends ``~ef/S`` so total beam work stays roughly
constant as shards are added, which is what makes QPS scale with ``S``
(beam-search cost is ~linear in ``ef`` and only weakly dependent on n).

:class:`ClusterClient` fronts the router with the same serving envelope as
:class:`KNNServer` - bounded admission, micro-batching, two-phase
deadlines, ``ef``-shedding, optional result cache - and implements the
:class:`~repro.serve.client.SearchClient` protocol, so a cluster drops in
anywhere a single server did.  ``cluster/*`` metrics, ``CLUSTER_*`` /
``REPLICA_*`` hook events and ``cluster_batch -> shard-i -> merge`` trace
spans make a query traceable end to end (worker-side engine counters ride
back on each RPC reply and land as span attributes).
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

import numpy as np

from repro.apps.search import GraphSearchIndex, SearchConfig
from repro.core.sharding import shard_partition
from repro.errors import (
    ClusterError,
    ConfigurationError,
    DeadlineExceeded,
    ReplicaUnavailable,
    ServerClosed,
    ServerOverloaded,
    ShardUnavailable,
)
from repro.obs import Events, Observability
from repro.serve.cache import ResultCache
from repro.serve.client import SearchResult
from repro.serve.degrade import DegradationController
from repro.serve.queue import AdmissionQueue
from repro.serve.scheduler import MicroBatcher, Request, resolve
from repro.serve.server import ServeConfig
from repro.utils.parallel import fork_available
from repro.utils.validation import (
    check_positive_int,
    check_query_vector,
)

#: registry namespace the cluster metrics emit under
CLUSTER_METRICS_PREFIX = "cluster/"

# Packed merge-key layout (the engine beams' discipline, minus the
# expanded flag): high 32 bits are the float32 distance's bit pattern
# (order-preserving for non-negative distances), low 31 bits the global
# id.  Comparing keys compares (dist, global_id) lexicographically.
_ID_MASK = np.int64((1 << 31) - 1)
_ID_CAPACITY = 1 << 31
#: empty result slot: quiet-NaN distance bits, sorts after every real entry
_EMPTY_KEY = np.int64(0x7FC00000) << 32


# -- the cross-shard reduction --------------------------------------------------


def _pack(ids: np.ndarray, dists: np.ndarray) -> np.ndarray:
    """Pack (global id, dist) matrices into int64 sort keys; invalid rows
    (``id < 0``) become :data:`_EMPTY_KEY` so they sort last."""
    ids64 = np.asarray(ids, dtype=np.int64)
    bits = np.ascontiguousarray(
        np.asarray(dists, dtype=np.float32)
    ).view(np.uint32).astype(np.int64)
    keys = (bits << np.int64(32)) | (ids64 & _ID_MASK)
    return np.where(ids64 >= 0, keys, _EMPTY_KEY)


def merge_topk(
    parts: Sequence[tuple[np.ndarray, np.ndarray]], k: int
) -> tuple[np.ndarray, np.ndarray]:
    """Reduce per-shard top-k lists into the global top-k.

    ``parts`` is a sequence of ``(ids, dists)`` pairs, one per shard, each
    ``(m, k_s)`` with *global* ids, ascending distance, ``-1``/``+inf``
    in unfilled slots.  Every pair is packed into ``(dist, id)`` keys and
    one row-wise sort selects the merged top-``k`` - the same
    lexicographic order a flat index's engine emits, so given exhaustive
    per-shard inputs the merge reproduces the flat result bitwise.
    """
    if not parts:
        raise ConfigurationError("merge_topk() needs at least one shard part")
    keys = np.concatenate([_pack(i, d) for i, d in parts], axis=1)
    m = keys.shape[0]
    width = min(k, keys.shape[1])
    top = np.sort(keys, axis=1)[:, :width]
    dists = (top >> np.int64(32)).astype(np.uint32).view(np.float32)
    ids = (top & _ID_MASK).astype(np.int32)
    found = np.isfinite(dists)  # empty slots decode to NaN
    out_ids = np.full((m, k), -1, dtype=np.int32)
    out_dists = np.full((m, k), np.inf, dtype=np.float32)
    out_ids[:, :width] = np.where(found, ids, -1)
    out_dists[:, :width] = np.where(found, dists, np.float32(np.inf))
    return out_ids, out_dists


# -- configuration --------------------------------------------------------------


@dataclass(frozen=True)
class ClusterConfig:
    """Cluster topology, routing/health knobs and the serving envelope.

    Attributes
    ----------
    n_shards / n_replicas:
        ``S`` index shards, ``R`` replica workers per shard.
    backend:
        ``"process"`` (forked workers; the real isolation), ``"thread"``
        (in-process replicas - deterministic, fork-less, used by tests),
        or ``"auto"`` (process where ``fork`` exists, thread otherwise).
    shard_ef_policy:
        ``"full"`` sends the request ``ef`` to every shard (bitwise
        parity with a flat index under exhaustive search); ``"scaled"``
        sends ``max(shard_ef_floor, k, ceil(ef / S))`` so total beam work
        stays ~constant as shards are added (the throughput mode).
    shard_ef_floor:
        Accuracy floor of the scaled policy.
    rpc_timeout_s:
        How long one shard RPC may take before the replica is declared
        unavailable and the call fails over.  (Deliberately *not* coupled
        to request deadlines: a tight deadline must not eject a healthy
        replica - late results are discarded by the deadline check
        instead.)
    heartbeat_interval_s / heartbeat_timeout_s:
        The health monitor's ping cadence and per-ping patience.
    readmit_after_s:
        Back-off before an ejected replica is pinged for readmission.
    ewma_alpha:
        Smoothing of the per-replica latency EWMA used for routing.
    serve:
        The serving envelope (:class:`~repro.serve.server.ServeConfig`):
        admission, deadlines, shedding, caching, ``default_k``, ``ef``.
    """

    n_shards: int = 2
    n_replicas: int = 1
    backend: str = "auto"
    shard_ef_policy: str = "full"
    shard_ef_floor: int = 8
    rpc_timeout_s: float = 30.0
    heartbeat_interval_s: float = 0.25
    heartbeat_timeout_s: float = 2.0
    readmit_after_s: float = 1.0
    ewma_alpha: float = 0.3
    serve: ServeConfig = field(default_factory=ServeConfig)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "n_shards", check_positive_int(self.n_shards, "n_shards"))
        object.__setattr__(
            self, "n_replicas",
            check_positive_int(self.n_replicas, "n_replicas"))
        object.__setattr__(
            self, "shard_ef_floor",
            check_positive_int(self.shard_ef_floor, "shard_ef_floor"))
        if self.backend not in ("auto", "process", "thread"):
            raise ConfigurationError(
                f"backend must be auto/process/thread, got {self.backend!r}"
            )
        if self.shard_ef_policy not in ("full", "scaled"):
            raise ConfigurationError(
                f"shard_ef_policy must be full/scaled, "
                f"got {self.shard_ef_policy!r}"
            )
        for name in ("rpc_timeout_s", "heartbeat_interval_s",
                     "heartbeat_timeout_s", "readmit_after_s"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(
                    f"{name} must be > 0, got {getattr(self, name)}"
                )
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ConfigurationError(
                f"ewma_alpha must be in (0, 1], got {self.ewma_alpha}"
            )

    def resolved_backend(self) -> str:
        if self.backend != "auto":
            return self.backend
        return "process" if fork_available() else "thread"

    def shard_ef(self, ef: int, k: int) -> int:
        """The per-shard beam width for a request served at ``ef``."""
        if self.shard_ef_policy == "full":
            return ef
        return max(self.shard_ef_floor, k, -(-ef // self.n_shards))

    def as_dict(self) -> dict[str, Any]:
        out = dataclasses.asdict(self)
        out["serve"] = self.serve.as_dict()
        return out

    @classmethod
    def from_dict(cls, mapping: Mapping[str, Any]) -> "ClusterConfig":
        data = dict(mapping)
        if "serve" in data and not isinstance(data["serve"], ServeConfig):
            data["serve"] = ServeConfig.from_dict(data["serve"])
        return cls(**data)


# -- replica workers ------------------------------------------------------------


def _serve_shard_request(
    index: GraphSearchIndex, lo: int, queries: np.ndarray, k: int, ef: int
) -> tuple[np.ndarray, np.ndarray, dict[str, Any]]:
    """Answer one shard RPC: local beam search + monotone id shift.

    Shared by the process worker loop and the thread replica so both
    backends compute byte-identical replies.  The returned info dict
    carries the worker-side engine counters the router attaches to the
    per-shard trace span.
    """
    t0 = time.perf_counter()
    ids, dists = index.search(queries, k, ef=ef)
    seconds = time.perf_counter() - t0
    gids = ids.astype(np.int64)
    gids[gids >= 0] += lo
    info: dict[str, Any] = {"engine_seconds": seconds}
    engine_stats = index.stats()
    for key in ("rounds", "expansions", "distance_evals"):
        if key in engine_stats:
            info[key] = engine_stats[key]
    return gids, dists, info


def _worker_main(conn, index: GraphSearchIndex, lo: int) -> None:
    """Replica worker process body: a blocking RPC loop over one pipe.

    Every request carries a sequence number that is echoed in the reply,
    so a router that timed out on a slow reply can discard the stale
    message instead of mis-pairing it with the next request.  Engine
    errors are reported, not fatal; the loop only exits on ``stop`` or a
    broken pipe.
    """
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        op, seq = msg[0], msg[1]
        try:
            if op == "stop":
                conn.send(("bye", seq))
                break
            elif op == "ping":
                conn.send(("pong", seq, os.getpid()))
            elif op == "query":
                _, _, queries, k, ef = msg
                gids, dists, info = _serve_shard_request(
                    index, lo, queries, k, ef)
                conn.send(("ok", seq, gids, dists, info))
            else:
                conn.send(("error", seq, f"unknown op {op!r}"))
        except Exception as exc:  # noqa: BLE001 - must reach the router
            try:
                conn.send(("error", seq, repr(exc)))
            except (BrokenPipeError, OSError):
                break
    try:
        conn.close()
    except OSError:  # pragma: no cover
        pass


class ProcessReplica:
    """One forked replica worker and its synchronous pipe RPC channel.

    The index is inherited by fork (copy-on-write), never pickled - the
    same recipe as :func:`repro.utils.parallel.map_forked`.  One RPC is in
    flight per replica at a time (a per-replica lock serialises callers);
    concurrency comes from having many replicas.
    """

    backend = "process"

    def __init__(self, shard_id: int, replica_id: int,
                 index: GraphSearchIndex, lo: int) -> None:
        self.shard_id = int(shard_id)
        self.replica_id = int(replica_id)
        ctx = multiprocessing.get_context("fork")
        parent_conn, child_conn = ctx.Pipe()
        self._conn = parent_conn
        self._proc = ctx.Process(
            target=_worker_main, args=(child_conn, index, lo),
            daemon=True, name=f"shard{shard_id}-r{replica_id}",
        )
        self._proc.start()
        child_conn.close()
        self._lock = threading.Lock()
        self._seq = 0

    @property
    def name(self) -> str:
        return f"s{self.shard_id}/r{self.replica_id}"

    def _rpc(self, payload: tuple, timeout: float) -> tuple:
        """One send/recv round trip; caller must hold ``self._lock``."""
        self._seq += 1
        seq = self._seq
        try:
            self._conn.send((payload[0], seq, *payload[1:]))
            while True:
                if not self._conn.poll(timeout):
                    raise ReplicaUnavailable(
                        f"replica {self.name} did not answer within "
                        f"{timeout:.1f}s"
                    )
                reply = self._conn.recv()
                if reply[1] == seq:
                    return reply
                # stale reply from a previously timed-out call: discard
        except (BrokenPipeError, EOFError, OSError) as exc:
            raise ReplicaUnavailable(
                f"replica {self.name} connection failed: {exc!r}"
            ) from exc

    def call(self, payload: tuple, timeout: float) -> tuple:
        """Synchronous RPC: ``("query", qmat, k, ef)`` or ``("ping",)``.

        Raises :class:`~repro.errors.ReplicaUnavailable` on crash or
        timeout, :class:`~repro.errors.ClusterError` when the worker
        reports an engine error.
        """
        with self._lock:
            reply = self._rpc(payload, timeout)
        if reply[0] == "error":
            raise ClusterError(f"replica {self.name} failed: {reply[2]}")
        return (reply[0], *reply[2:])

    def try_ping(self, timeout: float) -> bool | None:
        """Heartbeat probe: True=pong, False=dead, None=busy serving.

        Busy means the replica lock is held by an in-flight query - the
        replica is demonstrably alive, so the monitor skips the ping
        rather than queueing behind real work.
        """
        if not self._lock.acquire(blocking=False):
            return None
        try:
            self._rpc(("ping",), timeout)
            return True
        except ReplicaUnavailable:
            return False
        finally:
            self._lock.release()

    def alive(self) -> bool:
        return self._proc.is_alive()

    def kill(self) -> None:
        """Chaos hook: hard-kill the worker (a simulated machine crash)."""
        self._proc.terminate()

    def close(self, timeout: float = 2.0) -> None:
        if self._proc.is_alive():
            try:
                with self._lock:
                    self._rpc(("stop",), timeout)
            except ReplicaUnavailable:
                pass
        self._proc.join(timeout=timeout)
        if self._proc.is_alive():  # pragma: no cover - stuck worker
            self._proc.terminate()
            self._proc.join(timeout=timeout)
        try:
            self._conn.close()
        except OSError:  # pragma: no cover
            pass


class ThreadReplica:
    """In-process replica: the same RPC semantics without fork.

    Used on fork-less platforms and by tests that want deterministic,
    debuggable replicas with controllable failure (``kill``/``revive``)
    and latency (``delay_s``).  Answers are byte-identical to a process
    replica's because both run :func:`_serve_shard_request`.
    """

    backend = "thread"

    def __init__(self, shard_id: int, replica_id: int,
                 index: GraphSearchIndex, lo: int) -> None:
        self.shard_id = int(shard_id)
        self.replica_id = int(replica_id)
        self._index = index
        self._lo = int(lo)
        self._dead = False
        #: test hook: artificial per-call latency (seconds)
        self.delay_s = 0.0

    @property
    def name(self) -> str:
        return f"s{self.shard_id}/r{self.replica_id}"

    def call(self, payload: tuple, timeout: float) -> tuple:
        if self._dead:
            raise ReplicaUnavailable(f"replica {self.name} is down")
        if self.delay_s:
            time.sleep(self.delay_s)
        op = payload[0]
        if op == "ping":
            return ("pong", 0)
        if op == "query":
            _, queries, k, ef = payload
            try:
                gids, dists, info = _serve_shard_request(
                    self._index, self._lo, queries, k, ef)
            except ReplicaUnavailable:
                raise
            except Exception as exc:  # noqa: BLE001 - mirror the worker loop
                raise ClusterError(
                    f"replica {self.name} failed: {exc!r}"
                ) from exc
            return ("ok", gids, dists, info)
        raise ClusterError(f"replica {self.name}: unknown op {op!r}")

    def try_ping(self, timeout: float) -> bool | None:
        return not self._dead

    def alive(self) -> bool:
        return not self._dead

    def kill(self) -> None:
        self._dead = True

    def revive(self) -> None:
        self._dead = False

    def close(self, timeout: float = 2.0) -> None:
        self._dead = True


# -- health-aware routing -------------------------------------------------------


class ReplicaGroup:
    """The ``R`` replicas of one shard plus their health bookkeeping.

    Health state is ``"healthy"`` or ``"ejected"``; routing prefers
    healthy replicas with the fewest in-flight calls, breaking ties by
    the per-replica latency EWMA (a consistently slow replica naturally
    sinks to last choice).  Ejected replicas remain *last-resort*
    candidates: if every healthy sibling also fails a call, the router
    still tries them before declaring the shard unavailable.
    """

    def __init__(self, shard_id: int, replicas: Sequence[Any], *,
                 ewma_alpha: float, readmit_after_s: float) -> None:
        self.shard_id = int(shard_id)
        self.replicas = list(replicas)
        self._alpha = float(ewma_alpha)
        self._readmit_after = float(readmit_after_s)
        self._lock = threading.Lock()
        self._state: dict[Any, str] = {r: "healthy" for r in self.replicas}
        self._ewma_ms: dict[Any, float | None] = dict.fromkeys(self.replicas)
        self._inflight: dict[Any, int] = dict.fromkeys(self.replicas, 0)
        self._calls: dict[Any, int] = dict.fromkeys(self.replicas, 0)
        self._failures: dict[Any, int] = dict.fromkeys(self.replicas, 0)
        self._ejected_at: dict[Any, float] = {}
        self.ejections = 0
        self.readmissions = 0

    def pick(self, exclude: Sequence[Any] = ()) -> Any | None:
        """Claim the best replica not in ``exclude`` (None if exhausted)."""
        with self._lock:
            candidates = [r for r in self.replicas if r not in exclude]
            if not candidates:
                return None

            def rank(r: Any) -> tuple:
                penalty = 0 if self._state[r] == "healthy" else 1
                ewma = self._ewma_ms[r]
                return (penalty, self._inflight[r],
                        ewma if ewma is not None else 0.0)

            best = min(candidates, key=rank)
            self._inflight[best] += 1
            return best

    def release(self, replica: Any) -> None:
        with self._lock:
            self._inflight[replica] = max(0, self._inflight[replica] - 1)

    def record_success(self, replica: Any, ms: float) -> bool:
        """Fold one served call in; True if this readmitted the replica."""
        with self._lock:
            self._calls[replica] += 1
            prev = self._ewma_ms[replica]
            self._ewma_ms[replica] = (
                ms if prev is None else
                self._alpha * ms + (1.0 - self._alpha) * prev
            )
            return self._mark_alive_locked(replica)

    def eject(self, replica: Any) -> bool:
        """Mark a replica dead; True on the healthy->ejected transition."""
        with self._lock:
            self._failures[replica] += 1
            if self._state[replica] == "healthy":
                self._state[replica] = "ejected"
                self._ejected_at[replica] = time.monotonic()
                self.ejections += 1
                return True
            return False

    def _mark_alive_locked(self, replica: Any) -> bool:
        if self._state[replica] == "ejected":
            self._state[replica] = "healthy"
            self._ejected_at.pop(replica, None)
            self.readmissions += 1
            return True
        return False

    def mark_alive(self, replica: Any) -> bool:
        with self._lock:
            return self._mark_alive_locked(replica)

    def state(self, replica: Any) -> str:
        with self._lock:
            return self._state[replica]

    def readmit_due(self, replica: Any, now: float) -> bool:
        """Has the ejected replica's readmission back-off elapsed?"""
        with self._lock:
            ejected_at = self._ejected_at.get(replica)
            return (ejected_at is not None
                    and now - ejected_at >= self._readmit_after)

    def healthy_count(self) -> int:
        with self._lock:
            return sum(1 for s in self._state.values() if s == "healthy")

    def snapshot(self) -> list[dict[str, Any]]:
        with self._lock:
            return [
                {
                    "shard": self.shard_id,
                    "replica": r.replica_id,
                    "backend": r.backend,
                    "state": self._state[r],
                    "ewma_ms": self._ewma_ms[r],
                    "calls": self._calls[r],
                    "failures": self._failures[r],
                }
                for r in self.replicas
            ]


class ShardRouter:
    """Scatter-gather across shard replica groups with failover.

    One thread per shard fans a batched query matrix out to the best
    replica of each group; a failed call ejects the replica and retries
    the whole shard batch on a sibling (replicas are deterministic
    copies, so the retried answer is the answer).  A background heartbeat
    thread pings idle replicas, ejecting silent ones and readmitting
    recovered ones after a back-off.
    """

    def __init__(self, groups: Sequence[ReplicaGroup], config: ClusterConfig,
                 *, obs: Observability | None = None) -> None:
        self.groups = list(groups)
        self.config = config
        self.obs = obs
        self._pool = ThreadPoolExecutor(
            max_workers=max(1, len(self.groups)),
            thread_name_prefix="cluster-scatter",
        )
        self._stop_event = threading.Event()
        self._monitor: threading.Thread | None = None
        self._lock = threading.Lock()
        self.counters: dict[str, int] = {
            "shard_calls": 0, "failovers": 0, "ejections": 0,
            "readmissions": 0, "heartbeats": 0,
        }

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        if self._monitor is not None:
            return
        self._stop_event.clear()
        self._monitor = threading.Thread(
            target=self._heartbeat_loop, daemon=True, name="cluster-heartbeat"
        )
        self._monitor.start()

    def close(self) -> None:
        self._stop_event.set()
        if self._monitor is not None:
            self._monitor.join(timeout=5.0)
            self._monitor = None
        self._pool.shutdown(wait=True)
        for group in self.groups:
            for replica in group.replicas:
                replica.close()

    # -- the scatter-gather hot path -------------------------------------------

    def scatter(
        self, qmat: np.ndarray, k: int, ef: int
    ) -> list[tuple[np.ndarray, np.ndarray, dict[str, Any]]]:
        """Fan one ``(m, d)`` batch out to every shard; gather in shard order.

        Returns one ``(global_ids, dists, info)`` triple per shard.  Any
        shard whose every replica fails raises
        :class:`~repro.errors.ShardUnavailable` out of this call.
        """
        if len(self.groups) == 1:
            return [self._call_shard(self.groups[0], qmat, k, ef)]
        futures = [
            self._pool.submit(self._call_shard, group, qmat, k, ef)
            for group in self.groups
        ]
        return [fut.result() for fut in futures]

    def _call_shard(
        self, group: ReplicaGroup, qmat: np.ndarray, k: int, ef: int
    ) -> tuple[np.ndarray, np.ndarray, dict[str, Any]]:
        tried: list[Any] = []
        while True:
            replica = group.pick(exclude=tried)
            if replica is None:
                raise ShardUnavailable(
                    f"all {len(group.replicas)} replicas of shard "
                    f"{group.shard_id} are unavailable",
                    shard_id=group.shard_id,
                )
            t0 = time.monotonic()
            try:
                reply = replica.call(
                    ("query", qmat, k, ef), self.config.rpc_timeout_s)
            except ReplicaUnavailable:
                group.release(replica)
                tried.append(replica)
                if group.eject(replica):
                    self._count("ejections")
                    self._emit(Events.REPLICA_EJECTED, shard=group.shard_id,
                               replica=replica.replica_id, reason="rpc")
                self._count("failovers")
                self._emit(Events.CLUSTER_FAILOVER, shard=group.shard_id,
                           replica=replica.replica_id,
                           remaining=len(group.replicas) - len(tried))
                continue
            except ClusterError:
                # an engine error is deterministic - a sibling replica
                # would fail identically, so surface it instead of
                # burning the whole group on retries
                group.release(replica)
                raise
            ms = (time.monotonic() - t0) * 1000.0
            group.release(replica)
            self._count("shard_calls")
            if group.record_success(replica, ms):
                self._count("readmissions")
                self._emit(Events.REPLICA_READMITTED, shard=group.shard_id,
                           replica=replica.replica_id, via="traffic")
            _, gids, dists, info = reply
            info = dict(info)
            info.update(shard=group.shard_id, replica=replica.name,
                        rpc_ms=ms)
            return gids, dists, info

    # -- the health monitor ----------------------------------------------------

    def _heartbeat_loop(self) -> None:
        cfg = self.config
        while not self._stop_event.wait(cfg.heartbeat_interval_s):
            now = time.monotonic()
            for group in self.groups:
                for replica in group.replicas:
                    state = group.state(replica)
                    if state == "ejected" and not group.readmit_due(replica, now):
                        continue  # still in back-off
                    ok = replica.try_ping(cfg.heartbeat_timeout_s)
                    if ok is None:
                        continue  # busy serving == alive
                    if ok:
                        if group.mark_alive(replica):
                            self._count("readmissions")
                            self._emit(Events.REPLICA_READMITTED,
                                       shard=group.shard_id,
                                       replica=replica.replica_id,
                                       via="heartbeat")
                    elif group.eject(replica):
                        self._count("ejections")
                        self._emit(Events.REPLICA_EJECTED,
                                   shard=group.shard_id,
                                   replica=replica.replica_id,
                                   reason="heartbeat")
            self._count("heartbeats")

    # -- bookkeeping -----------------------------------------------------------

    def _count(self, name: str, n: int = 1) -> None:
        with self._lock:
            self.counters[name] += n
            if self.obs is not None:
                self.obs.metrics.counter(
                    CLUSTER_METRICS_PREFIX + name).inc(n)

    def _emit(self, event: str, **payload: Any) -> None:
        if self.obs is not None:
            self.obs.hooks.emit(event, **payload)

    def stats(self) -> dict[str, Any]:
        with self._lock:
            counters = dict(self.counters)
        return {
            **counters,
            "healthy_replicas": sum(g.healthy_count() for g in self.groups),
            "replicas": [entry for g in self.groups for entry in g.snapshot()],
        }


# -- the cluster-facing client --------------------------------------------------


class ClusterClient:
    """:class:`~repro.serve.client.SearchClient` over a sharded cluster.

    Usage::

        with ClusterClient.build(points, k=16,
                                 config=ClusterConfig(n_shards=4,
                                                      n_replicas=2)) as client:
            res = client.query(query_vector, k=10)   # SearchResult

    The serving envelope (admission queue, micro-batcher, two-phase
    deadlines, shedding, result cache) is the same as
    :class:`~repro.serve.server.KNNServer`'s; execution scatter-gathers
    each micro-batch across the shards through the :class:`ShardRouter`
    and reduces per-shard top-k with :func:`merge_topk`.  With the
    ``"full"`` shard-ef policy and exhaustive beams the results are
    bitwise identical to a flat index over the same points.
    """

    def __init__(
        self,
        shard_indexes: Sequence[GraphSearchIndex],
        ranges: Sequence[tuple[int, int]],
        config: ClusterConfig | None = None,
        *,
        obs: Observability | None = None,
    ) -> None:
        if not shard_indexes:
            raise ConfigurationError("a cluster needs at least one shard")
        if len(shard_indexes) != len(ranges):
            raise ConfigurationError(
                f"{len(shard_indexes)} shard indexes vs {len(ranges)} ranges"
            )
        expect = 0
        for sid, ((lo, hi), index) in enumerate(zip(ranges, shard_indexes)):
            if lo != expect or hi <= lo:
                raise ConfigurationError(
                    f"shard ranges must be contiguous from 0; shard {sid} "
                    f"is [{lo}, {hi}) after {expect}"
                )
            if index.n != hi - lo:
                raise ConfigurationError(
                    f"shard {sid} indexes {index.n} points but covers "
                    f"[{lo}, {hi})"
                )
            expect = hi
        if expect >= _ID_CAPACITY:
            raise ConfigurationError(
                f"cluster supports at most {_ID_CAPACITY - 1} points, "
                f"got {expect}"
            )
        dims = {index.dim for index in shard_indexes}
        if len(dims) != 1:
            raise ConfigurationError(f"shard dims disagree: {sorted(dims)}")

        self.config = config or ClusterConfig(n_shards=len(shard_indexes))
        if self.config.n_shards != len(shard_indexes):
            raise ConfigurationError(
                f"config.n_shards={self.config.n_shards} but "
                f"{len(shard_indexes)} shard indexes were supplied"
            )
        self.obs = obs
        self.ranges = [(int(lo), int(hi)) for lo, hi in ranges]
        self._dim = shard_indexes[0].dim
        self._n = expect

        backend = self.config.resolved_backend()
        if backend == "process" and not fork_available():
            raise ConfigurationError(
                "backend='process' needs the fork start method; "
                "use backend='thread'"
            )
        replica_cls = ProcessReplica if backend == "process" else ThreadReplica
        self.backend = backend
        groups = []
        for sid, (index, (lo, _hi)) in enumerate(zip(shard_indexes, ranges)):
            replicas = [
                replica_cls(sid, rid, index, lo)
                for rid in range(self.config.n_replicas)
            ]
            groups.append(ReplicaGroup(
                sid, replicas,
                ewma_alpha=self.config.ewma_alpha,
                readmit_after_s=self.config.readmit_after_s,
            ))
        self.router = ShardRouter(groups, self.config, obs=obs)

        serve = self.config.serve
        base_ef = serve.ef
        if base_ef is None:
            base_ef = int(getattr(shard_indexes[0].config, "ef", 32))
        self._base_ef = base_ef
        self.cache: ResultCache | None = (
            ResultCache(serve.cache.size, serve.cache.decimals)
            if serve.cache.size > 0 else None
        )
        self.degradation = DegradationController(serve.shed)
        self._queue: AdmissionQueue | None = None
        self._batcher: MicroBatcher | None = None
        self._accepting = False
        self._lock = threading.Lock()
        self.counters: dict[str, int] = {
            "submitted": 0, "accepted": 0, "completed": 0, "rejected": 0,
            "timeout_queued": 0, "timeout_late": 0, "cache_hits": 0,
            "shed_served": 0, "batches": 0, "cancelled": 0,
            "shard_errors": 0,
        }
        self._latencies_ok: list[float] = []

    # -- construction ----------------------------------------------------------

    @classmethod
    def build(
        cls,
        points: np.ndarray,
        *,
        k: int = 16,
        build_config=None,
        search_config: SearchConfig | None = None,
        seed=None,
        config: ClusterConfig | None = None,
        obs: Observability | None = None,
    ) -> "ClusterClient":
        """Partition ``points`` and build one shard index per range.

        Shards are built sequentially in the parent process with the same
        build/search configuration and seed; replicas then fork from the
        built indexes (copy-on-write, no pickling), so every replica of a
        shard is the identical deterministic function.
        """
        x = np.asarray(points)
        cfg = config or ClusterConfig()
        ranges = shard_partition(x.shape[0], cfg.n_shards)
        indexes = [
            GraphSearchIndex.build(
                x[lo:hi], k=k, build_config=build_config,
                search_config=search_config, seed=seed,
            )
            for lo, hi in ranges
        ]
        return cls(indexes, ranges, cfg, obs=obs)

    # -- lifecycle -------------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._accepting

    @property
    def dim(self) -> int:
        return self._dim

    @property
    def n(self) -> int:
        """Total points across all shards."""
        return self._n

    @property
    def n_shards(self) -> int:
        return len(self.router.groups)

    @property
    def default_ef(self) -> int:
        return self._base_ef

    def start(self) -> "ClusterClient":
        if self._accepting:
            raise ConfigurationError("cluster client already started")
        adm = self.config.serve.admission
        self._queue = AdmissionQueue(adm.queue_limit)
        self._batcher = MicroBatcher(
            self._queue, self._execute,
            max_batch=adm.max_batch, max_wait_s=adm.max_wait_ms / 1000.0,
            n_workers=adm.n_workers,
        )
        self._batcher.start()
        self.router.start()
        self._accepting = True
        self._emit(Events.CLUSTER_START, shards=self.n_shards,
                   replicas=self.config.n_replicas, backend=self.backend,
                   ef=self._base_ef,
                   shard_ef_policy=self.config.shard_ef_policy)
        return self

    def stop(self, drain: bool = True, timeout: float | None = None) -> None:
        """Stop accepting and shut batcher, router and replicas down."""
        if self._queue is None:
            return
        self._accepting = False
        queue, batcher = self._queue, self._batcher
        if not drain:
            dropped = queue.drain()
            MicroBatcher.fail_all(
                dropped, ServerClosed("cluster stopped before execution")
            )
            self._count("cancelled", len(dropped))
        queue.close()
        if batcher is not None:
            batcher.stop(timeout=timeout)
        self._queue = None
        self._batcher = None
        self.router.close()
        self._emit(Events.CLUSTER_STOP, **self.counters)

    def close(self) -> None:
        """SearchClient protocol: graceful drain + full teardown."""
        if self._accepting:
            self.stop()
        else:
            self.router.close()

    def __enter__(self) -> "ClusterClient":
        if not self._accepting:
            self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- chaos / test hooks ----------------------------------------------------

    def kill_replica(self, shard_id: int, replica_id: int) -> None:
        """Hard-kill one replica worker (the replica-outage drill)."""
        self.router.groups[shard_id].replicas[replica_id].kill()

    # -- client API ------------------------------------------------------------

    def submit(
        self,
        query: np.ndarray,
        k: int | None = None,
        *,
        ef: int | None = None,
        deadline_ms: float | None = None,
    ) -> Future:
        """Submit one query vector; future resolves to a SearchResult.

        Identical admission semantics to
        :meth:`repro.serve.server.KNNServer.submit`:
        :class:`~repro.errors.ServerOverloaded` is raised synchronously,
        deadline/closed failures arrive through the future.
        """
        queue = self._queue
        if not self._accepting or queue is None:
            raise ServerClosed("submit() on a stopped cluster client")
        serve = self.config.serve
        q = check_query_vector(query, self._dim, "query")
        k = serve.default_k if k is None else check_positive_int(k, "k")
        ef = self._base_ef if ef is None else check_positive_int(ef, "ef")
        if deadline_ms is None:
            deadline_ms = serve.deadline.default_ms
        now = time.monotonic()
        deadline = None if deadline_ms is None else now + deadline_ms / 1000.0

        self._count("submitted")
        req = Request(query=q, k=k, ef=ef, deadline=deadline, submitted=now)
        if self.cache is not None:
            req.cache_key = self.cache.key(q, k, ef)
            hit = self.cache.get(req.cache_key)
            if hit is not None:
                ids, dists, served_ef = hit
                self._count("cache_hits")
                self._count("completed")
                self._emit(Events.SERVE_CACHE_HIT, k=k, ef=ef)
                self._observe_latency(time.monotonic() - now)
                resolve(req.future, SearchResult(
                    ids=ids.copy(), dists=dists.copy(), served_ef=served_ef,
                    from_cache=True, shard_fanout=self.n_shards, batch_size=0,
                    latency_ms=(time.monotonic() - now) * 1000.0,
                ))
                return req.future

        if not queue.offer(req):
            depth = queue.depth()
            self._count("rejected")
            self._emit(Events.SERVE_REQUEST_REJECTED, queue_depth=depth,
                       limit=serve.admission.queue_limit)
            raise ServerOverloaded(
                f"admission queue full ({depth}/"
                f"{serve.admission.queue_limit} pending); retry with backoff",
                queue_depth=depth,
            )
        self._count("accepted")
        self._gauge("queue_depth", queue.depth())
        return req.future

    def query(
        self,
        query: np.ndarray,
        k: int | None = None,
        *,
        ef: int | None = None,
        deadline_ms: float | None = None,
        timeout: float | None = None,
    ) -> SearchResult:
        """Blocking convenience wrapper: ``submit(...).result()``."""
        return self.submit(query, k, ef=ef, deadline_ms=deadline_ms) \
            .result(timeout=timeout)

    # -- batch execution -------------------------------------------------------

    def _execute(self, batch: list[Request]) -> None:
        now = time.monotonic()
        queue = self._queue
        depth = queue.depth() if queue is not None else 0

        live: list[Request] = []
        expired = 0
        for req in batch:
            if req.expired(now):
                expired += 1
                req.future.set_exception(DeadlineExceeded(
                    f"deadline expired while queued "
                    f"({(now - req.submitted) * 1000.0:.1f}ms in queue)"
                ))
            else:
                live.append(req)
        if expired:
            self._count("timeout_queued", expired)
            self._emit(Events.SERVE_REQUEST_TIMEOUT, phase="queued",
                       count=expired)
        if not live:
            return

        old_level = self.degradation.level
        level = self.degradation.observe(
            depth, self.config.serve.admission.queue_limit)
        if level != old_level:
            self._gauge("shed_level", level)
            self._emit(Events.SERVE_SHED_CHANGE, old_level=old_level,
                       new_level=level, queue_depth=depth)

        groups: dict[tuple[int, int], list[Request]] = {}
        for req in live:
            groups.setdefault((req.k, req.ef), []).append(req)
        for (k, ef), reqs in groups.items():
            self._run_group(k, ef, reqs, depth)

    def _run_group(self, k: int, ef: int, reqs: list[Request],
                   depth: int) -> None:
        served_ef = self.degradation.effective_ef(ef)
        shed = served_ef < ef
        shard_ef = self.config.shard_ef(served_ef, k)
        qmat = np.stack([r.query for r in reqs], axis=0)
        self._emit(Events.CLUSTER_BATCH_BEFORE, batch=len(reqs), k=k,
                   ef=served_ef, shard_ef=shard_ef, shed=shed,
                   queue_depth=depth, shards=self.n_shards)
        t0 = time.monotonic()
        for req in reqs:
            self._observe_hist("queue_wait_seconds", t0 - req.submitted)

        tracer = self.obs.trace if self.obs is not None else None
        try:
            if tracer is not None:
                with tracer.span("cluster_batch", batch=len(reqs), k=k,
                                 ef=served_ef, shard_ef=shard_ef,
                                 shards=self.n_shards) as sp:
                    parts = self.router.scatter(qmat, k, shard_ef)
                    # one child span per shard, carrying the worker-side
                    # engine counters that rode back on the RPC reply
                    for _gids, _dists, info in parts:
                        with tracer.span(f"shard-{info['shard']}", **info):
                            pass
                    with tracer.span("merge", shards=self.n_shards, k=k):
                        ids, dists = merge_topk(
                            [(g, d) for g, d, _ in parts], k)
                    sp.set(expansions=sum(
                        info.get("expansions", 0) for _, _, info in parts))
            else:
                parts = self.router.scatter(qmat, k, shard_ef)
                ids, dists = merge_topk([(g, d) for g, d, _ in parts], k)
        except ClusterError as exc:
            # a whole shard is gone: fail this group (capacity degraded,
            # never a partial/incorrect merge), keep serving other groups
            self._count("shard_errors")
            MicroBatcher.fail_all(reqs, exc)
            return
        seconds = time.monotonic() - t0
        self._count("batches")
        if shed:
            self._count("shed_served", len(reqs))
        self._observe_hist("batch_seconds", seconds)
        self._observe_hist("batch_size", len(reqs))
        self._emit(Events.CLUSTER_BATCH_AFTER, batch=len(reqs), k=k,
                   ef=served_ef, shard_ef=shard_ef, shed=shed,
                   seconds=seconds,
                   shard_ms=[round(info.get("rpc_ms", 0.0), 3)
                             for _, _, info in parts])

        now = time.monotonic()
        late = 0
        for i, req in enumerate(reqs):
            if req.expired(now):
                late += 1
                req.future.set_exception(DeadlineExceeded(
                    f"execution finished "
                    f"{(now - req.deadline) * 1000.0:.1f}ms past the deadline"
                ))
                continue
            if self.cache is not None and req.cache_key is not None \
                    and not shed:
                self.cache.put(req.cache_key, (ids[i], dists[i], served_ef))
            latency = now - req.submitted
            self._observe_latency(latency)
            self._count("completed")
            resolve(req.future, SearchResult(
                ids=ids[i], dists=dists[i], served_ef=served_ef,
                from_cache=False, shard_fanout=self.n_shards,
                latency_ms=latency * 1000.0, batch_size=len(reqs),
            ))
        if late:
            self._count("timeout_late", late)
            self._emit(Events.SERVE_REQUEST_TIMEOUT, phase="late", count=late)

    # -- observability ---------------------------------------------------------

    def _count(self, name: str, n: int = 1) -> None:
        with self._lock:
            self.counters[name] += n
            if self.obs is not None:
                self.obs.metrics.counter(
                    CLUSTER_METRICS_PREFIX + name).inc(n)

    def _emit(self, event: str, **payload: Any) -> None:
        if self.obs is not None:
            self.obs.hooks.emit(event, **payload)

    def _gauge(self, name: str, value: float) -> None:
        if self.obs is not None:
            with self._lock:
                self.obs.metrics.gauge(
                    CLUSTER_METRICS_PREFIX + name).set(value)

    def _observe_hist(self, name: str, value: float) -> None:
        if self.obs is not None:
            with self._lock:
                self.obs.metrics.histogram(
                    CLUSTER_METRICS_PREFIX + name).observe(value)

    def _observe_latency(self, seconds: float) -> None:
        with self._lock:
            self._latencies_ok.append(seconds)
            if len(self._latencies_ok) > 100_000:
                del self._latencies_ok[: len(self._latencies_ok) // 2]
        if self.obs is not None:
            with self._lock:
                self.obs.metrics.quantile_histogram(
                    CLUSTER_METRICS_PREFIX + "latency_seconds"
                ).observe(seconds)

    def latency_percentiles(self) -> dict[str, float]:
        """p50/p95/p99 (milliseconds) of successful responses so far."""
        with self._lock:
            lat = sorted(self._latencies_ok)
        if not lat:
            return {"p50": 0.0, "p95": 0.0, "p99": 0.0}

        def pct(p: float) -> float:
            idx = min(len(lat) - 1, int(round(p * (len(lat) - 1))))
            return lat[idx] * 1000.0

        return {"p50": pct(0.50), "p95": pct(0.95), "p99": pct(0.99)}

    def stats(self) -> dict[str, Any]:
        """Serving counters + queue state + router/replica health."""
        queue = self._queue
        with self._lock:
            counters = dict(self.counters)
        out: dict[str, Any] = {
            "engine": "cluster-client",
            "n_shards": self.n_shards,
            "n_replicas": self.config.n_replicas,
            "backend": self.backend,
            **counters,
            "timeouts": counters["timeout_queued"] + counters["timeout_late"],
            "queue_depth": queue.depth() if queue is not None else 0,
            "queue_limit": self.config.serve.admission.queue_limit,
            "shed_level": self.degradation.level,
            "shed_transitions": self.degradation.transitions,
            "latency_ms": self.latency_percentiles(),
            "router": self.router.stats(),
        }
        if self.cache is not None:
            out["cache"] = self.cache.stats()
        return out
