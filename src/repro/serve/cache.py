"""LRU result cache keyed on quantized query bytes.

Online similarity traffic is heavy-tailed: the same (or near-identical)
query vectors recur - autocomplete prefixes, trending items, retry storms.
The cache exploits that by quantizing each query to a fixed decimal grid
and using the raw bytes of the quantized vector (plus ``k`` and the
requested ``ef``) as the key, so queries within half a grid step of each
other collapse onto one entry.

Only *full-quality* results are cached: the server never stores a result
that was computed at a shed (degraded) ``ef``, so a cache hit after
recovery always returns full-accuracy answers.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any

import numpy as np


class ResultCache:
    """Thread-safe LRU of ``key -> (ids, dists)`` result pairs.

    Parameters
    ----------
    capacity:
        Maximum number of cached results (LRU eviction beyond it).
    decimals:
        Quantization grid for the key: queries are rounded to this many
        decimal digits before hashing.  Coarser grids (fewer decimals)
        trade exactness of the hit for a higher hit rate; ``decimals >= 6``
        is effectively exact-match for float32 inputs.
    """

    def __init__(self, capacity: int, decimals: int = 6) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.decimals = int(decimals)
        self._store: OrderedDict[bytes, Any] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def key(self, query: np.ndarray, k: int, ef: int, epoch: int = 0) -> bytes:
        """The cache key of one (1-D, float32) query vector.

        ``epoch`` is the index epoch the result was (or will be) computed
        against.  Folding it into the key bytes is the serving stack's
        staleness guarantee for mutable indexes: after an epoch flip every
        old entry becomes structurally unreachable - no invalidation scan,
        no TTL race - and the LRU ages the dead epoch's entries out.
        Static indexes stay at epoch 0 and keep their old keys.
        """
        q = np.round(np.asarray(query, dtype=np.float32), self.decimals)
        # normalise -0.0 -> 0.0 so the two encode to the same bytes
        q = q + np.float32(0.0)
        return q.tobytes() + int(k).to_bytes(4, "little") \
            + int(ef).to_bytes(4, "little") \
            + int(epoch).to_bytes(8, "little", signed=False)

    def get(self, key: bytes) -> Any | None:
        """Look up (and LRU-touch) a cached result; ``None`` on miss."""
        with self._lock:
            entry = self._store.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._store.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key: bytes, value: Any) -> None:
        with self._lock:
            self._store[key] = value
            self._store.move_to_end(key)
            while len(self._store) > self.capacity:
                self._store.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._store.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._store)

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {"size": len(self._store), "capacity": self.capacity,
                    "hits": self.hits, "misses": self.misses}
