"""Exact ground-truth computation with on-disk caching.

Brute-force ground truth is the most expensive part of repeated
experiments (O(n^2 d) per workload); this module memoises it under a cache
directory keyed by a content fingerprint of the points and ``k``, so a
bench suite re-run touches each workload's ground truth once ever.
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path

import numpy as np

from repro.baselines.bruteforce import BruteForceKNN

#: cache location override
ENV_CACHE_DIR = "WKNNG_GT_CACHE"
_DEFAULT_CACHE = Path.home() / ".cache" / "wknng-groundtruth"


def fingerprint(points: np.ndarray, k: int) -> str:
    """Content hash of (points, k) - stable across runs and machines."""
    h = hashlib.sha256()
    arr = np.ascontiguousarray(points, dtype=np.float32)
    h.update(str(arr.shape).encode())
    h.update(str(k).encode())
    h.update(arr.tobytes())
    return h.hexdigest()[:24]


def cache_dir() -> Path:
    return Path(os.environ.get(ENV_CACHE_DIR, _DEFAULT_CACHE))


def exact_neighbors(
    points: np.ndarray, k: int, use_cache: bool = True
) -> tuple[np.ndarray, np.ndarray]:
    """Exact self-excluding K-NN ``(ids, dists)`` with disk memoisation."""
    if not use_cache:
        return BruteForceKNN(points).search(points, k, exclude_self=True)
    path = cache_dir() / f"{fingerprint(points, k)}.npz"
    if path.exists():
        try:
            with np.load(path) as data:
                return data["ids"], data["dists"]
        except Exception:
            path.unlink(missing_ok=True)  # corrupt cache entry: recompute
    ids, dists = BruteForceKNN(points).search(points, k, exclude_self=True)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(".tmp.npz")
    np.savez_compressed(tmp, ids=ids, dists=dists)
    os.replace(tmp, path)
    return ids, dists


def clear_cache() -> int:
    """Delete all cached entries; returns how many files were removed."""
    directory = cache_dir()
    if not directory.exists():
        return 0
    removed = 0
    for f in directory.glob("*.npz"):
        f.unlink()
        removed += 1
    return removed
