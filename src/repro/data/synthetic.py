"""Synthetic dataset generators matching the benchmark regimes.

Each generator controls the data property that matters to the systems under
test:

* **clusteredness** (``gaussian_mixture``) - RP-forest leaves and IVF cells
  both exploit cluster structure; cluster separation controls how easy the
  problem is;
* **no structure at all** (``uniform_hypercube``) - the adversarial regime
  where every method degrades toward brute force;
* **low intrinsic dimension in a high ambient dimension**
  (``low_dim_manifold``, ``gist_like``) - the regime of real image
  descriptors, where random projections shine;
* **integer-histogram statistics** (``sift_like``) - non-negative, skewed,
  bounded coordinates like SIFT's 128-d gradient histograms.

All generators return float32 ``(n, dim)`` arrays and take explicit seeds.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.rng import RngStream, as_generator
from repro.utils.validation import check_positive_int


def gaussian_mixture(
    n: int,
    dim: int,
    n_clusters: int = 64,
    cluster_std: float = 1.0,
    center_scale: float = 5.0,
    seed: RngStream = None,
) -> np.ndarray:
    """Isotropic Gaussian blobs around uniformly random centres.

    ``center_scale / cluster_std`` sets separation: the default (5:1) gives
    visibly clustered but overlapping blobs, the typical ANN-benchmark
    difficulty.
    """
    n = check_positive_int(n, "n")
    dim = check_positive_int(dim, "dim")
    n_clusters = check_positive_int(n_clusters, "n_clusters")
    rng = as_generator(seed)
    centers = rng.standard_normal((n_clusters, dim)) * center_scale
    labels = rng.integers(0, n_clusters, n)
    pts = centers[labels] + rng.standard_normal((n, dim)) * cluster_std
    return pts.astype(np.float32)


def uniform_hypercube(n: int, dim: int, seed: RngStream = None) -> np.ndarray:
    """i.i.d. uniform points in ``[0, 1)^dim`` - the structure-free regime."""
    n = check_positive_int(n, "n")
    dim = check_positive_int(dim, "dim")
    rng = as_generator(seed)
    return rng.random((n, dim), dtype=np.float32)


def low_dim_manifold(
    n: int,
    dim: int,
    intrinsic_dim: int = 8,
    noise: float = 0.01,
    seed: RngStream = None,
) -> np.ndarray:
    """Points on a random ``intrinsic_dim``-dimensional affine patch,
    smoothly curved by a quadratic map, embedded in ``dim`` dimensions.

    Models real feature spaces whose intrinsic dimension is far below the
    ambient one - the case where tree methods stay effective at high
    nominal ``dim``.
    """
    n = check_positive_int(n, "n")
    dim = check_positive_int(dim, "dim")
    intrinsic_dim = check_positive_int(intrinsic_dim, "intrinsic_dim")
    if intrinsic_dim > dim:
        raise ConfigurationError(
            f"intrinsic_dim ({intrinsic_dim}) cannot exceed ambient dim ({dim})"
        )
    rng = as_generator(seed)
    latent = rng.standard_normal((n, intrinsic_dim))
    # linear embedding plus a quadratic bend so the manifold is not flat
    a = rng.standard_normal((intrinsic_dim, dim)) / np.sqrt(intrinsic_dim)
    b = rng.standard_normal((intrinsic_dim, dim)) / intrinsic_dim
    pts = latent @ a + (latent**2) @ b
    pts += rng.standard_normal((n, dim)) * noise
    return pts.astype(np.float32)


def sift_like(
    n: int,
    dim: int = 128,
    n_clusters: int = 128,
    cluster_std: float = 12.0,
    center_scale: float = 40.0,
    seed: RngStream = None,
) -> np.ndarray:
    """SIFT-statistics vectors: non-negative, skewed, bounded histograms.

    Cluster structure (descriptors of similar patches repeat) with
    half-normal coordinate magnitudes clipped to SIFT's [0, 255] range and
    rounded to integers, then stored as float32 like the fvecs files.
    ``cluster_std``/``center_scale`` control how much the descriptor
    clusters overlap (higher std relative to scale = harder workload).
    """
    rng = as_generator(seed)
    base = gaussian_mixture(
        n, dim, n_clusters=n_clusters, cluster_std=cluster_std,
        center_scale=center_scale, seed=rng
    )
    pts = np.abs(base)
    np.clip(pts, 0.0, 255.0, out=pts)
    return np.rint(pts).astype(np.float32)


def gist_like(
    n: int, dim: int = 960, intrinsic_dim: int = 32, seed: RngStream = None
) -> np.ndarray:
    """GIST-statistics vectors: very high ambient dimension, strongly
    correlated coordinates (low intrinsic dimension), small positive values."""
    rng = as_generator(seed)
    pts = low_dim_manifold(n, dim, intrinsic_dim=intrinsic_dim, noise=0.02, seed=rng)
    # GIST energies are non-negative and small; squash accordingly
    pts = np.abs(pts).astype(np.float32)
    pts /= max(1.0, float(np.percentile(pts, 99)))
    np.clip(pts, 0.0, 1.5, out=pts)
    return pts.astype(np.float32)


#: name -> generator taking (n, seed, **overrides)
DATASETS: dict[str, Callable[..., np.ndarray]] = {
    "gaussian": lambda n, seed=None, **kw: gaussian_mixture(n, seed=seed, **{"dim": 64, **kw}),
    "uniform": lambda n, seed=None, **kw: uniform_hypercube(n, seed=seed, **{"dim": 16, **kw}),
    "manifold": lambda n, seed=None, **kw: low_dim_manifold(n, seed=seed, **{"dim": 256, **kw}),
    "sift-like": lambda n, seed=None, **kw: sift_like(n, seed=seed, **kw),
    "gist-like": lambda n, seed=None, **kw: gist_like(n, seed=seed, **kw),
}


def make_dataset(name: str, n: int, seed: RngStream = None, **overrides) -> np.ndarray:
    """Instantiate a named benchmark dataset (see :data:`DATASETS`)."""
    try:
        gen = DATASETS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown dataset {name!r}; available: {sorted(DATASETS)}"
        ) from None
    return gen(n, seed=seed, **overrides)
