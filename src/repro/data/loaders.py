"""TEXMEX ``.fvecs``/``.ivecs`` readers and writers.

The standard ANN-benchmark container (SIFT1M, GIST1M, ...): each vector is
stored as a little-endian int32 dimension count followed by ``dim``
float32 (fvecs) or int32 (ivecs) values.  Provided so real benchmark files
drop straight into the harness when present; the repository itself ships
no data.
"""

from __future__ import annotations

import os

import numpy as np

from repro.errors import DataError


def _read_vecs(path: str | os.PathLike, value_dtype) -> np.ndarray:
    raw = np.fromfile(path, dtype=np.int32)
    if raw.size == 0:
        raise DataError(f"{path}: empty vecs file")
    dim = int(raw[0])
    if dim <= 0:
        raise DataError(f"{path}: invalid leading dimension {dim}")
    record = dim + 1
    if raw.size % record != 0:
        raise DataError(
            f"{path}: size {raw.size} int32 words is not a multiple of the "
            f"record length {record} (dim={dim})"
        )
    mat = raw.reshape(-1, record)
    if not (mat[:, 0] == dim).all():
        raise DataError(f"{path}: inconsistent per-record dimensions")
    body = mat[:, 1:]
    if value_dtype == np.float32:
        return body.copy().view(np.float32)
    return body.astype(value_dtype)


def read_fvecs(path: str | os.PathLike) -> np.ndarray:
    """Read an ``.fvecs`` file into an ``(n, dim)`` float32 matrix."""
    return _read_vecs(path, np.float32)


def read_ivecs(path: str | os.PathLike) -> np.ndarray:
    """Read an ``.ivecs`` file (e.g. ground-truth ids) into int32."""
    return _read_vecs(path, np.int32)


def write_fvecs(path: str | os.PathLike, x: np.ndarray) -> None:
    """Write a float32 matrix in ``.fvecs`` format."""
    x = np.ascontiguousarray(x, dtype=np.float32)
    if x.ndim != 2:
        raise DataError(f"fvecs expects a 2-D matrix, got shape {x.shape}")
    n, dim = x.shape
    out = np.empty((n, dim + 1), dtype=np.int32)
    out[:, 0] = dim
    out[:, 1:] = x.view(np.int32)
    out.tofile(path)


def write_ivecs(path: str | os.PathLike, x: np.ndarray) -> None:
    """Write an int32 matrix in ``.ivecs`` format."""
    x = np.ascontiguousarray(x, dtype=np.int32)
    if x.ndim != 2:
        raise DataError(f"ivecs expects a 2-D matrix, got shape {x.shape}")
    n, dim = x.shape
    out = np.empty((n, dim + 1), dtype=np.int32)
    out[:, 0] = dim
    out[:, 1:] = x
    out.tofile(path)
