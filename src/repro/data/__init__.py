"""Datasets: synthetic generators and on-disk loaders.

The paper evaluates on standard ANN benchmark datasets (SIFT/GIST-style
feature vectors).  Those exact files are not redistributable here, so
:mod:`repro.data.synthetic` provides generators with matched *statistics*
(dimensionality, clusteredness, intrinsic dimension, value range) - the
properties that drive RP-forest and IVF accuracy/cost behaviour.  Real
``.fvecs``/``.ivecs`` files drop in via :mod:`repro.data.loaders` when
available.
"""

from repro.data.synthetic import (
    DATASETS,
    gaussian_mixture,
    gist_like,
    low_dim_manifold,
    make_dataset,
    sift_like,
    uniform_hypercube,
)
from repro.data.loaders import read_fvecs, read_ivecs, write_fvecs, write_ivecs

__all__ = [
    "DATASETS",
    "gaussian_mixture",
    "gist_like",
    "low_dim_manifold",
    "make_dataset",
    "sift_like",
    "uniform_hypercube",
    "read_fvecs",
    "read_ivecs",
    "write_fvecs",
    "write_ivecs",
]
