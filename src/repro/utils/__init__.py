"""Shared utilities: RNG streams, validation, array helpers, logging."""

from repro.utils.rng import RngStream, as_generator, spawn_streams
from repro.utils.validation import (
    check_points_matrix,
    check_positive_int,
    check_probability,
    ensure_float32,
)
from repro.utils.arrays import (
    blockwise_ranges,
    pad_to_length,
    row_topk,
    segment_lengths,
)

__all__ = [
    "RngStream",
    "as_generator",
    "spawn_streams",
    "check_points_matrix",
    "check_positive_int",
    "check_probability",
    "ensure_float32",
    "blockwise_ranges",
    "pad_to_length",
    "row_topk",
    "segment_lengths",
]
