"""Small array utilities used across kernels, baselines and the harness.

Everything here is NumPy-vectorised; these helpers exist so hot loops in the
kernels stay readable without re-deriving the same index gymnastics.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np


def blockwise_ranges(total: int, block: int) -> Iterator[tuple[int, int]]:
    """Yield ``(start, stop)`` ranges covering ``[0, total)`` in ``block`` steps.

    The final range may be shorter.  ``block`` must be positive.
    """
    if block <= 0:
        raise ValueError(f"block must be positive, got {block}")
    for start in range(0, total, block):
        yield start, min(start + block, total)


def pad_to_length(values: np.ndarray, length: int, fill) -> np.ndarray:
    """Right-pad a 1-D array to ``length`` with ``fill`` (no-op if long enough)."""
    if values.shape[0] >= length:
        return values
    out = np.full(length, fill, dtype=values.dtype)
    out[: values.shape[0]] = values
    return out


def row_topk(dists: np.ndarray, ids: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
    """Select the ``k`` smallest entries of each row, sorted ascending.

    Parameters
    ----------
    dists, ids:
        ``(n_rows, m)`` matrices of candidate distances and their ids.
        Invalid candidates should carry ``+inf`` distance (they sort last).
    k:
        Number of entries to keep per row; must satisfy ``k <= m``.

    Returns
    -------
    (top_dists, top_ids):
        ``(n_rows, k)`` arrays, each row sorted by ascending distance.

    Notes
    -----
    Uses :func:`numpy.argpartition` (linear-time selection) followed by a
    sort of only ``k`` elements per row - the same two-phase select-then-sort
    the warp-centric kernels perform with bitonic networks.
    """
    m = dists.shape[1]
    if k > m:
        raise ValueError(f"k={k} exceeds the number of candidates m={m}")
    if k == m:
        part = np.argsort(dists, axis=1, kind="stable")
        rows = np.arange(dists.shape[0])[:, None]
        return dists[rows, part], ids[rows, part]
    part = np.argpartition(dists, k - 1, axis=1)[:, :k]
    rows = np.arange(dists.shape[0])[:, None]
    pd = dists[rows, part]
    pi = ids[rows, part]
    order = np.argsort(pd, axis=1, kind="stable")
    return (
        np.take_along_axis(pd, order, axis=1),
        np.take_along_axis(pi, order, axis=1),
    )


def segment_lengths(sorted_keys: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Run-length encode a *sorted* key array.

    Returns ``(unique_keys, starts, counts)`` such that segment ``i`` spans
    ``sorted_keys[starts[i] : starts[i] + counts[i]]`` and contains only
    ``unique_keys[i]``.
    """
    if sorted_keys.ndim != 1:
        raise ValueError("segment_lengths expects a 1-D key array")
    n = sorted_keys.shape[0]
    if n == 0:
        empty = np.empty(0, dtype=np.int64)
        return sorted_keys[:0], empty, empty
    boundaries = np.flatnonzero(np.diff(sorted_keys)) + 1
    starts = np.concatenate(([0], boundaries))
    counts = np.diff(np.concatenate((starts, [n])))
    return sorted_keys[starts], starts, counts


def dedupe_per_row(ids: np.ndarray, invalid: int = -1) -> np.ndarray:
    """Mask duplicate ids within each row, replacing repeats with ``invalid``.

    Keeps the first occurrence (in the row's left-to-right order).  Used to
    avoid wasting distance computations on candidates proposed by several
    trees.  Rows are processed fully vectorised via a sort/compare/unsort
    round trip.
    """
    n, m = ids.shape
    order = np.argsort(ids, axis=1, kind="stable")
    sorted_ids = np.take_along_axis(ids, order, axis=1)
    dup = np.zeros_like(sorted_ids, dtype=bool)
    dup[:, 1:] = sorted_ids[:, 1:] == sorted_ids[:, :-1]
    # Scatter the duplicate flags back to the original column positions.
    flat_rows = np.repeat(np.arange(n), m)
    out = ids.copy()
    out_flat_mask = np.zeros((n, m), dtype=bool)
    out_flat_mask[flat_rows, order.ravel()] = dup.ravel()
    out[out_flat_mask] = invalid
    return out
