"""Input validation helpers.

These are the single place where user-supplied arrays and scalars are
checked, so error messages are consistent across the public API.  All
checks raise subclasses of :class:`repro.errors.ReproError`.
"""

from __future__ import annotations

import numbers

import numpy as np

from repro.errors import ConfigurationError, DataError


def ensure_float32(x: np.ndarray, name: str = "array") -> np.ndarray:
    """Return ``x`` as a C-contiguous float32 array, copying only if needed.

    float32 is the library's working precision: it matches what the paper's
    CUDA kernels use and halves memory traffic relative to float64, which is
    exactly the trade-off the GPU implementation exploits.
    """
    arr = np.ascontiguousarray(x, dtype=np.float32)
    if not np.all(np.isfinite(arr)):
        raise DataError(f"{name} contains NaN or infinite values")
    return arr


def check_points_matrix(x: np.ndarray, name: str = "points") -> np.ndarray:
    """Validate an ``(n, d)`` points matrix and return it as float32.

    Raises :class:`DataError` for wrong rank, empty inputs, or non-finite
    values.
    """
    arr = np.asarray(x)
    if arr.ndim != 2:
        raise DataError(
            f"{name} must be a 2-D (n_points, n_dims) matrix, got ndim={arr.ndim}"
        )
    n, d = arr.shape
    if n == 0 or d == 0:
        raise DataError(f"{name} must be non-empty, got shape {arr.shape}")
    return ensure_float32(arr, name=name)


def check_positive_int(value, name: str, *, minimum: int = 1) -> int:
    """Validate an integer-valued scalar ``>= minimum`` and return it as int."""
    if isinstance(value, bool) or not isinstance(value, numbers.Integral):
        raise ConfigurationError(f"{name} must be an integer, got {value!r}")
    value = int(value)
    if value < minimum:
        raise ConfigurationError(f"{name} must be >= {minimum}, got {value}")
    return value


def check_probability(value, name: str) -> float:
    """Validate a float in ``[0, 1]`` and return it."""
    if not isinstance(value, numbers.Real) or isinstance(value, bool):
        raise ConfigurationError(f"{name} must be a real number, got {value!r}")
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must lie in [0, 1], got {value}")
    return value


def check_k_fits(k: int, n_points: int) -> int:
    """Check the neighbour count ``k`` against the dataset size.

    A K-NN *graph* excludes self-loops, so each point has at most
    ``n_points - 1`` possible neighbours.
    """
    k = check_positive_int(k, "k")
    if k > n_points - 1:
        raise ConfigurationError(
            f"k={k} is too large for n_points={n_points}; a KNN graph holds at "
            f"most n_points-1={n_points - 1} neighbours per point"
        )
    return k
