"""Input validation helpers.

These are the single place where user-supplied arrays and scalars are
checked, so error messages are consistent across the public API.  All
checks raise subclasses of :class:`repro.errors.ReproError`.
"""

from __future__ import annotations

import numbers

import numpy as np

from repro.errors import ConfigurationError, DataError


def ensure_float32(x: np.ndarray, name: str = "array") -> np.ndarray:
    """Return ``x`` as a C-contiguous float32 array, copying only if needed.

    float32 is the library's working precision: it matches what the paper's
    CUDA kernels use and halves memory traffic relative to float64, which is
    exactly the trade-off the GPU implementation exploits.
    """
    try:
        arr = np.ascontiguousarray(x, dtype=np.float32)
    except (TypeError, ValueError) as exc:
        raise DataError(
            f"{name} cannot be converted to float32 (dtype "
            f"{getattr(np.asarray(x), 'dtype', '?')}): {exc}"
        ) from None
    if not np.all(np.isfinite(arr)):
        raise DataError(f"{name} contains NaN or infinite values")
    return arr


def check_points_matrix(x: np.ndarray, name: str = "points") -> np.ndarray:
    """Validate an ``(n, d)`` points matrix and return it as float32.

    Raises :class:`DataError` for wrong rank, empty inputs, or non-finite
    values.
    """
    arr = np.asarray(x)
    if arr.ndim != 2:
        raise DataError(
            f"{name} must be a 2-D (n_points, n_dims) matrix, got ndim={arr.ndim}"
        )
    n, d = arr.shape
    if n == 0 or d == 0:
        raise DataError(f"{name} must be non-empty, got shape {arr.shape}")
    return ensure_float32(arr, name=name)


def check_query_matrix(
    q: np.ndarray, expected_dim: int | None = None, name: str = "queries"
) -> np.ndarray:
    """Validate an ``(m, d)`` query matrix at the engine protocol boundary.

    This is the shared :meth:`~repro.baselines.KNNIndex.query` validator
    every engine (bruteforce, IVF, NN-descent, the graph index, the query
    server) runs before touching its internals, so wrong dtype / wrong
    rank / dimension mismatch / NaN all fail with the same clear
    :class:`ValueError` subclass instead of an opaque shape error deep
    inside a gather.

    Parameters
    ----------
    q:
        The candidate query matrix.  A single ``(d,)`` vector is rejected
        with a message telling the caller to reshape - engines answer
        *batches*.
    expected_dim:
        When given, ``q.shape[1]`` must equal it (the indexed
        dimensionality).
    """
    arr = np.asarray(q)
    if arr.ndim == 1:
        raise DataError(
            f"{name} must be a 2-D (n_queries, n_dims) matrix; got a 1-D "
            f"array of shape {arr.shape} - reshape a single query with "
            f"q[None, :]"
        )
    out = check_points_matrix(arr, name=name)
    if expected_dim is not None and out.shape[1] != int(expected_dim):
        raise DataError(
            f"{name} have dimension {out.shape[1]} but the index was built "
            f"over dimension {expected_dim}"
        )
    return out


def check_query_vector(
    q: np.ndarray, expected_dim: int | None = None, name: str = "query"
) -> np.ndarray:
    """Validate one query vector (``(d,)`` or ``(1, d)``) -> 1-D float32.

    The single-request twin of :func:`check_query_matrix`, used by the
    online serving path where clients submit one vector at a time.
    """
    arr = np.asarray(q)
    if arr.ndim == 2 and arr.shape[0] == 1:
        arr = arr[0]
    if arr.ndim != 1:
        raise DataError(
            f"{name} must be a single 1-D vector, got shape {arr.shape}"
        )
    if arr.size == 0:
        raise DataError(f"{name} must be non-empty")
    out = ensure_float32(arr, name=name)
    if expected_dim is not None and out.shape[0] != int(expected_dim):
        raise DataError(
            f"{name} has dimension {out.shape[0]} but the index was built "
            f"over dimension {expected_dim}"
        )
    return out


def check_positive_int(value, name: str, *, minimum: int = 1) -> int:
    """Validate an integer-valued scalar ``>= minimum`` and return it as int."""
    if isinstance(value, bool) or not isinstance(value, numbers.Integral):
        raise ConfigurationError(f"{name} must be an integer, got {value!r}")
    value = int(value)
    if value < minimum:
        raise ConfigurationError(f"{name} must be >= {minimum}, got {value}")
    return value


def check_probability(value, name: str) -> float:
    """Validate a float in ``[0, 1]`` and return it."""
    if not isinstance(value, numbers.Real) or isinstance(value, bool):
        raise ConfigurationError(f"{name} must be a real number, got {value!r}")
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must lie in [0, 1], got {value}")
    return value


def check_k_fits(k: int, n_points: int) -> int:
    """Check the neighbour count ``k`` against the dataset size.

    A K-NN *graph* excludes self-loops, so each point has at most
    ``n_points - 1`` possible neighbours.
    """
    k = check_positive_int(k, "k")
    if k > n_points - 1:
        raise ConfigurationError(
            f"k={k} is too large for n_points={n_points}; a KNN graph holds at "
            f"most n_points-1={n_points - 1} neighbours per point"
        )
    return k
