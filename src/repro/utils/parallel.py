"""Process-parallel helpers for CPU-side phases.

RP-forest trees are mutually independent, so the forest phase
parallelises trivially across processes.  The implementation uses
``fork`` workers (POSIX): the points matrix is made visible to children
through a module-level global *before* forking, so it is inherited
copy-on-write - no pickling, no copying of the (potentially large) data.

Determinism is preserved because each tree's RNG stream is derived from
the parent seed by index (see :func:`repro.utils.rng.spawn_streams`), so
the result is bitwise identical to the serial build regardless of worker
count or completion order.

On platforms without ``fork`` (or with ``n_jobs=1``) everything runs
serially - same results, no surprises.
"""

from __future__ import annotations

import multiprocessing
from typing import Any, Callable, Sequence

#: worker-side view of the forked payload (set in the parent pre-fork)
_FORK_PAYLOAD: dict[str, Any] = {}


def fork_available() -> bool:
    """True when the 'fork' start method exists (Linux/macOS)."""
    try:
        multiprocessing.get_context("fork")
        return True
    except ValueError:  # pragma: no cover - non-POSIX
        return False


def usable_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware).

    ``os.cpu_count()`` reports the machine; CI runners and containers
    often restrict the schedulable set, which is what matters when
    deciding whether ``n_jobs > 1`` can pay off.
    """
    import os

    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def shard_ranges(total: int, n_shards: int) -> list[tuple[int, int]]:
    """Split ``[0, total)`` into at most ``n_shards`` near-even contiguous ranges.

    Used to shard batched work (e.g. a query matrix) across forked
    workers: every range is non-empty, sizes differ by at most one, and
    concatenating results in range order restores the original row order.
    """
    if n_shards <= 0:
        raise ValueError(f"n_shards must be positive, got {n_shards}")
    n_shards = min(n_shards, total)
    if n_shards <= 0:
        return []
    base, extra = divmod(total, n_shards)
    out: list[tuple[int, int]] = []
    start = 0
    for i in range(n_shards):
        stop = start + base + (1 if i < extra else 0)
        out.append((start, stop))
        start = stop
    return out


def _invoke(task: tuple[int, tuple]) -> tuple[int, Any]:
    index, args = task
    fn = _FORK_PAYLOAD["fn"]
    shared = _FORK_PAYLOAD["shared"]
    return index, fn(shared, *args)


def map_forked(
    fn: Callable,
    shared: Any,
    per_task_args: Sequence[tuple],
    n_jobs: int,
) -> list:
    """Run ``fn(shared, *args_i)`` for every task, order-preserving.

    ``shared`` (typically a large read-only array) is passed to workers by
    fork inheritance, not pickling.  ``fn`` must be a module-level
    function (it is inherited the same way).  Falls back to a serial loop
    when ``n_jobs <= 1``, there is only one task, or fork is unavailable.
    """
    tasks = list(enumerate(per_task_args))
    if n_jobs <= 1 or len(tasks) <= 1 or not fork_available():
        return [fn(shared, *args) for _, args in tasks]
    ctx = multiprocessing.get_context("fork")
    _FORK_PAYLOAD["fn"] = fn
    _FORK_PAYLOAD["shared"] = shared
    try:
        with ctx.Pool(processes=min(n_jobs, len(tasks))) as pool:
            results = pool.map(_invoke, tasks)
    finally:
        _FORK_PAYLOAD.clear()
    results.sort(key=lambda pair: pair[0])
    return [value for _, value in results]
