"""Reproducible random-number streams.

Every stochastic component of the library (RP-tree hyperplanes, k-means
initialisation, synthetic data generators, refinement sampling) draws from an
explicitly passed :class:`numpy.random.Generator`.  Nothing in the library
touches NumPy's global RNG, so two runs with the same seeds are bitwise
reproducible regardless of import order or other libraries.

:func:`spawn_streams` derives independent child generators from one parent
seed, which is how the forest builder gives each tree its own stream (trees
can then be built in any order - or in parallel - without changing results).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

#: Things acceptable wherever the library wants a random source.
RngStream = int | np.random.Generator | np.random.SeedSequence | None


def as_generator(seed: RngStream) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Accepts ``None`` (fresh OS entropy), an integer seed, a
    :class:`~numpy.random.SeedSequence`, or an existing generator (returned
    unchanged, *not* copied, so state advances for the caller too).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_streams(seed: RngStream, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent generators from ``seed``.

    When ``seed`` is an existing generator, children are derived via
    :meth:`numpy.random.Generator.spawn`, which advances the parent; for
    int/None/SeedSequence seeds, a fresh :class:`~numpy.random.SeedSequence`
    is spawned so the parent seed remains usable elsewhere.
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of streams: {n}")
    if isinstance(seed, np.random.Generator):
        return list(seed.spawn(n))
    if isinstance(seed, np.random.SeedSequence):
        ss = seed
    else:
        ss = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in ss.spawn(n)]


def random_unit_vectors(
    rng: np.random.Generator, n: int, dim: int, dtype=np.float32
) -> np.ndarray:
    """Sample ``n`` unit vectors uniformly on the ``dim``-sphere.

    Used for RP-tree hyperplane normals.  Gaussian sampling followed by
    normalisation yields the rotation-invariant (uniform) distribution on
    the sphere.
    """
    if n <= 0 or dim <= 0:
        raise ValueError(f"need positive n and dim, got n={n}, dim={dim}")
    vecs = rng.standard_normal((n, dim)).astype(dtype, copy=False)
    norms = np.linalg.norm(vecs, axis=1, keepdims=True)
    # Degenerate all-zero draws are astronomically unlikely but cheap to fix.
    norms[norms == 0] = 1.0
    vecs /= norms
    return vecs


def sample_without_replacement(
    rng: np.random.Generator, population: int | Sequence[int] | np.ndarray, k: int
) -> np.ndarray:
    """Sample ``k`` distinct items, clamping ``k`` to the population size."""
    if isinstance(population, (int, np.integer)):
        size = int(population)
        pool: np.ndarray | None = None
    else:
        pool = np.asarray(population)
        size = pool.shape[0]
    k = min(int(k), size)
    idx = rng.choice(size, size=k, replace=False)
    return idx if pool is None else pool[idx]
