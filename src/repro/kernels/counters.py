"""Operation counters for the vectorised kernel backend.

Wall-clock time of the vectorised backend depends on NumPy/BLAS details;
the counters record the *algorithmic* quantities (distance evaluations,
insertion attempts, contention retries, lock acquisitions, merge rounds)
that transfer to any implementation, including the paper's CUDA kernels.
Benchmarks report both.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.metrics import MetricsRegistry

#: registry namespace the vectorised kernel counters emit under
METRICS_PREFIX = "kernel/"


@dataclass
class OpCounters:
    """Algorithmic work counters accumulated by a strategy."""

    #: point-pair distance evaluations (each costs O(d) FLOPs).  In the
    #: leaf phase, strategies that update both endpoints of a pair
    #: (baseline, atomic) count each unordered pair once while the tiled
    #: strategy computes both directions; the sharded refine path computes
    #: (and counts) each unordered pair once per worker shard for every
    #: strategy.
    distance_evals: int = 0
    #: insertion visits: candidates entering the maintenance structure
    #: before any filtering (every visit pays the strategy's scan)
    candidates_seen: int = 0
    #: candidates surviving the membership/max filters (post filter)
    candidates_offered: int = 0
    #: candidates that actually entered a k-NN list
    candidates_inserted: int = 0
    #: atomic strategy: CAS/atomicMax attempts (>= inserted; excess = retries)
    atomic_attempts: int = 0
    #: atomic strategy: attempts that had to be replayed due to contention
    atomic_retries: int = 0
    #: baseline strategy: per-point lock acquisitions
    lock_acquisitions: int = 0
    #: tiled strategy: bulk merge rounds executed
    merge_rounds: int = 0
    #: tiled strategy: padded candidate slots processed by merges
    merge_slots: int = 0

    def add(self, other: "OpCounters") -> "OpCounters":
        """Accumulate ``other`` into ``self`` (in place); returns ``self``."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self

    def reset(self) -> None:
        for f in fields(self):
            setattr(self, f.name, 0)

    def as_dict(self) -> dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def emit(self, registry: "MetricsRegistry", prefix: str = METRICS_PREFIX) -> None:
        """Pour the current snapshot into an observability metrics registry.

        Each field becomes a counter increment named ``<prefix><field>``, so
        ``registry.section(prefix)`` reproduces :meth:`as_dict` exactly.
        """
        registry.absorb(self.as_dict(), prefix=prefix)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = [f"{k}={v}" for k, v in self.as_dict().items() if v]
        return "OpCounters(" + ", ".join(parts) + ")"
