"""The global-memory k-NN list structure shared by all strategies.

One :class:`KnnState` holds, for every point, its current best-``k``
neighbour candidates as two ``(n, k)`` arrays (ids and squared distances),
exactly the layout the paper keeps in GPU global memory.  Empty slots carry
id ``-1`` and distance ``+inf``, so "replace the maximum" insertion needs no
special-casing for partially-filled lists.

The lists are *unordered* during construction (hardware replaces arbitrary
slots); :meth:`KnnState.sorted_arrays` produces the final ascending order.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

#: sentinel id for an empty slot
EMPTY_ID = -1


class KnnState:
    """Mutable k-NN lists for ``n`` points, ``k`` slots per point."""

    __slots__ = ("n", "k", "ids", "dists")

    def __init__(self, n: int, k: int) -> None:
        if n <= 0 or k <= 0:
            raise ConfigurationError(f"KnnState needs positive n and k, got {n}, {k}")
        self.n = int(n)
        self.k = int(k)
        self.ids = np.full((n, k), EMPTY_ID, dtype=np.int32)
        self.dists = np.full((n, k), np.inf, dtype=np.float32)

    # -- queries ---------------------------------------------------------------

    def row_max(self, rows: np.ndarray) -> np.ndarray:
        """Current worst (largest) stored distance for each listed row."""
        return self.dists[rows].max(axis=1)

    def contains(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Vectorised membership test: is ``cols[i]`` already in row ``rows[i]``?

        Cost is O(len(rows) * k) - the same linear scan a warp performs.
        """
        return (self.ids[rows] == cols[:, None]).any(axis=1)

    def filled_counts(self) -> np.ndarray:
        """Number of occupied slots per row."""
        return (self.ids != EMPTY_ID).sum(axis=1)

    def sorted_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(ids, dists)`` with every row sorted by ascending distance.

        Exact distance ties are broken by ascending id, so the output is a
        *canonical* function of each row's (id, distance) set - independent
        of the slot order the maintenance discipline (or a sharded build's
        merge order) happened to leave behind.
        """
        order = np.lexsort((self.ids, self.dists), axis=1)
        return (
            np.take_along_axis(self.ids, order, axis=1),
            np.take_along_axis(self.dists, order, axis=1),
        )

    def canonicalize(self) -> None:
        """Reorder every row's slots in place to the canonical order.

        Slot order is maintenance-history dependent (disciplines replace
        arbitrary slots; a sharded build's merge writes in merge order).
        Pipeline stages whose *results* depend on slot positions - the
        refine round attaches sampling keys to ``(row, slot)`` edges -
        call this at the phase boundary so serial and sharded builds hand
        over bitwise-identical arrays, not just identical per-row sets.
        """
        order = np.lexsort((self.ids, self.dists), axis=1)
        self.ids = np.take_along_axis(self.ids, order, axis=1)
        self.dists = np.take_along_axis(self.dists, order, axis=1)

    # -- bulk mutation (used by strategies) -------------------------------------

    def merge_rows(
        self,
        rows: np.ndarray,
        cand_ids: np.ndarray,
        cand_dists: np.ndarray,
    ) -> int:
        """Merge per-row candidate matrices into the listed rows.

        Parameters
        ----------
        rows:
            ``(r,)`` unique row indices.
        cand_ids, cand_dists:
            ``(r, m)`` candidate matrices; invalid slots must carry
            ``EMPTY_ID`` / ``+inf``.  Candidates must not duplicate ids
            already present in the row, and must not duplicate each other
            (the strategies guarantee this before calling).

        Returns
        -------
        Number of candidates that survived into the lists.

        Notes
        -----
        Implemented as a select-k over the concatenation of the current
        ``k`` slots and the ``m`` candidates - the vectorised equivalent of
        the warp bitonic bulk merge.
        """
        if rows.size == 0:
            return 0
        all_d = np.concatenate([self.dists[rows], cand_dists], axis=1)
        all_i = np.concatenate([self.ids[rows], cand_ids], axis=1)
        k = self.k
        part = np.argpartition(all_d, k - 1, axis=1)[:, :k]
        take = np.take_along_axis
        new_d = take(all_d, part, axis=1)
        new_i = take(all_i, part, axis=1)
        inserted = int(((part >= k) & np.isfinite(new_d)).sum())
        self.dists[rows] = new_d
        self.ids[rows] = new_i
        return inserted

    def copy(self) -> "KnnState":
        out = KnnState(self.n, self.k)
        out.ids[...] = self.ids
        out.dists[...] = self.dists
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"KnnState(n={self.n}, k={self.k}, filled={int(self.filled_counts().sum())})"
