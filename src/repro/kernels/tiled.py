"""w-KNNG **tiled** strategy: shared-memory candidate tiles + bulk merge.

The paper's *tiled w-KNNG* variant decouples candidate generation from list
maintenance: a warp accumulates candidates for a point into a fixed-size
tile staged in shared memory; when the tile fills, it is sorted in-register
(bitonic) and **bulk-merged** with the point's global-memory list in one
pass (see :func:`repro.simt.intrinsics.warp_sorted_merge_max`).

Two properties make this the winner for high-dimensional points:

* distance computation uses the blocked GEMM schedule
  (:func:`repro.kernels.distance.pairwise_sq_l2_gemm`), i.e. point
  coordinates tiled through shared memory are reused across many pairs, so
  global traffic per distance falls with the tile size;
* list maintenance touches global memory once per *tile*, not once per
  candidate, amortising the O(k) scan across ``tile_size`` insertions.

The price is fixed tile overhead (sorting, padding), which is why the
atomic strategy - one cheap CAS per candidate - wins when distances are
cheap (low dimensionality).

The vectorised analogue pads each row's candidate group to ``tile_size``
columns and merges whole batches with one select-k per tile round.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.kernels.knn_state import EMPTY_ID, KnnState
from repro.kernels.strategy import Strategy, register_strategy
from repro.utils.arrays import segment_lengths

#: default candidates buffered per point before a bulk merge
DEFAULT_TILE_SIZE = 32


@register_strategy
class TiledStrategy(Strategy):
    """Tile-buffered bulk-merge maintenance (see module docstring).

    Parameters
    ----------
    tile_size:
        Candidates buffered per point per merge round.  Matches the warp
        width on the GPU (a tile is sorted by one warp-level bitonic pass);
        larger tiles amortise merges further at the cost of shared memory.
    """

    name = "tiled"
    distance_method = "gemm"
    pair_mode = "directed"

    def __init__(self, tile_size: int = DEFAULT_TILE_SIZE) -> None:
        super().__init__()
        if tile_size < 1:
            raise ConfigurationError(f"tile_size must be >= 1, got {tile_size}")
        self.tile_size = int(tile_size)

    def obs_attrs(self) -> dict:
        """Dispatch payload: bulk-merge discipline plus the tile width."""
        return {**super().obs_attrs(), "discipline": "bulk-merge",
                "tile_size": self.tile_size}

    def _insert(
        self, state: KnnState, rows: np.ndarray, cols: np.ndarray, dists: np.ndarray
    ) -> int:
        order = np.argsort(rows, kind="stable")
        srows = rows[order]
        scols = cols[order].astype(np.int32)
        sdists = dists[order]
        urows, starts, counts = segment_lengths(srows)
        tile = self.tile_size
        max_count = int(counts.max())
        inserted = 0
        col_offsets = np.arange(tile)
        for c0 in range(0, max_count, tile):
            remaining = counts - c0
            sel = remaining > 0
            if not sel.any():
                break
            rsel = urows[sel]
            width = np.minimum(remaining[sel], tile)
            pos = starts[sel, None] + c0 + col_offsets[None, :]
            valid = col_offsets[None, :] < width[:, None]
            pos = np.where(valid, pos, 0)  # clamp; masked out below
            cand_d = np.where(valid, sdists[pos], np.float32(np.inf))
            cand_i = np.where(valid, scols[pos], np.int32(EMPTY_ID))
            self.counters.merge_rounds += 1
            self.counters.merge_slots += int(cand_d.size)
            inserted += state.merge_rows(rsel, cand_i, cand_d)
        return inserted
