"""Vectorised "device" kernels: the three w-KNNG maintenance strategies.

The paper contributes three warp-centric ways to search and maintain k-NN
sets *in global memory*.  This package implements the same three strategies
as batched NumPy computations, where "one warp processes one point's list"
maps to "one row of a batched array operation":

============  ==============================================================
Strategy      Vectorised analogue (and what the wall-clock reflects)
============  ==============================================================
``baseline``  per-point lock + linear scan-and-replace-max.  Rows are
              processed one at a time within a batch (the lock serialises),
              so insertion cost grows with the number of *rows touched*.
``atomic``    lock-free insertion with 64-bit packed (distance, id) words
              and compare-and-swap retries.  Emulated as vectorised
              "replace the row maximum" passes over the whole candidate
              batch; the number of passes equals the depth of contention,
              and every pass re-attempts all still-pending candidates -
              the same retry traffic hardware serialises on.
``tiled``     candidates staged through shared memory in fixed-size tiles,
              then bulk-merged into the global list with a warp bitonic
              merge.  Emulated as a fully-batched pad-to-tile +
              select-k merge, and its leaf distance computation uses the
              blocked GEMM decomposition (the shared-memory tiling analogue),
              which is what makes it win at high dimensionality.
============  ==============================================================

Exact bit-level warp implementations of the same strategies live in
:mod:`repro.simt_kernels` (run on the simulator for microarchitecture
metrics); both layers produce identical k-NN lists for identical inputs,
which the integration tests assert.
"""

from repro.kernels.counters import OpCounters
from repro.kernels.knn_state import KnnState
from repro.kernels.strategy import Strategy, get_strategy, available_strategies
from repro.kernels.baseline import BaselineStrategy
from repro.kernels.atomic import AtomicStrategy
from repro.kernels.tiled import TiledStrategy
from repro.kernels.distance import (
    pairwise_sq_l2,
    pairwise_sq_l2_direct,
    pairwise_sq_l2_gemm,
    sq_l2_pairs,
)

__all__ = [
    "OpCounters",
    "KnnState",
    "Strategy",
    "get_strategy",
    "available_strategies",
    "BaselineStrategy",
    "AtomicStrategy",
    "TiledStrategy",
    "pairwise_sq_l2",
    "pairwise_sq_l2_direct",
    "pairwise_sq_l2_gemm",
    "sq_l2_pairs",
]
