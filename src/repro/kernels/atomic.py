"""w-KNNG **atomic** strategy: lock-free packed compare-and-swap insertion.

The paper's *w-KNNG atomic* variant maintains each point's list with 64-bit
words packing ``(float32 distance << 32) | id`` (see
:func:`repro.simt.atomics.pack_dist_id`).  To insert a candidate the warp

1. scans the ``k`` packed words and finds the maximum (warp reduction),
2. quick-rejects if the candidate does not beat it,
3. attempts an ``atomicCAS`` on the maximum slot;
4. on contention (another warp replaced the slot first) the attempt
   replays from step 1.

No lock is held, so insertion latency is one CAS in the uncontended case -
which is why the strategy wins when distance computation is cheap (low
dimensionality) and insertion dominates.  Contention grows with K and with
candidate pressure, which is what degrades it.

The vectorised analogue performs synchronous *passes* over the whole
candidate batch: every still-pending candidate re-checks the row maximum
("one CAS attempt", counted in ``atomic_attempts``); exactly one candidate
per row wins each pass, the rest replay (counted in ``atomic_retries``).
The final lists are identical to the k smallest of the offered union, as on
hardware.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.knn_state import KnnState
from repro.kernels.strategy import Strategy, register_strategy


#: candidates modelled as concurrently in flight (resident warps on the
#: device); contention retries only arise within a window of this size
DEFAULT_CONCURRENCY = 4096


@register_strategy
class AtomicStrategy(Strategy):
    """Lock-free CAS-based maintenance (see module docstring).

    Parameters
    ----------
    concurrency:
        How many candidates are treated as simultaneously in flight when
        emulating contention.  A real device has a bounded number of
        resident warps, so a candidate only races with its contemporaries;
        processing the batch in windows of this size keeps the retry
        accounting realistic instead of worst-case.
    """

    name = "atomic"
    distance_method = "direct"
    pair_mode = "unordered"

    def __init__(self, concurrency: int = DEFAULT_CONCURRENCY) -> None:
        super().__init__()
        if concurrency < 1:
            raise ValueError(f"concurrency must be >= 1, got {concurrency}")
        self.concurrency = int(concurrency)

    def obs_attrs(self) -> dict:
        """Dispatch payload: CAS discipline plus the contention window."""
        return {**super().obs_attrs(), "discipline": "cas",
                "concurrency": self.concurrency}

    def _insert(
        self, state: KnnState, rows: np.ndarray, cols: np.ndarray, dists: np.ndarray
    ) -> int:
        inserted = 0
        for s in range(0, rows.shape[0], self.concurrency):
            e = s + self.concurrency
            inserted += self._insert_window(state, rows[s:e], cols[s:e], dists[s:e])
        return inserted

    def _insert_window(
        self, state: KnnState, rows: np.ndarray, cols: np.ndarray, dists: np.ndarray
    ) -> int:
        # row-sort once so per-pass bookkeeping is per *row*, not per candidate
        order = np.argsort(rows, kind="stable")
        srows = rows[order]
        scols = cols[order].astype(np.int32)
        sdists = dists[order]
        urows = np.unique(srows)
        row_code = np.searchsorted(urows, srows)  # candidate -> dense row index
        dmat, ids = state.dists, state.ids
        inserted = 0
        pending = np.arange(srows.shape[0])
        pcodes = row_code
        while pending.size:
            # every pending candidate re-reads its row's current maximum
            # (one "scan + CAS attempt"); computed once per distinct row
            row_lists = dmat[urows]
            slot_per_row = row_lists.argmax(axis=1)
            rmax_per_row = row_lists[np.arange(urows.size), slot_per_row]
            alive = sdists[pending] < rmax_per_row[pcodes]
            pending = pending[alive]
            pcodes = pcodes[alive]
            if pending.size == 0:
                break
            # exactly one winner per row per pass: the first pending
            # occurrence (candidates are row-sorted, so np.unique's first
            # index is the earliest arrival - "lane order")
            _, first = np.unique(pcodes, return_index=True)
            winners = pending[first]
            wcodes = pcodes[first]
            wrows = urows[wcodes]
            wslot = slot_per_row[wcodes]
            dmat[wrows, wslot] = sdists[winners]
            ids[wrows, wslot] = scols[winners]
            inserted += int(winners.size)
            # one CAS per acceptance: each source warp drives its candidates
            # sequentially, so an accepted candidate CASes exactly once.
            # `atomic_retries` records the *worst-case simultaneity* replay
            # volume (every contemporary in-window candidate racing at once);
            # it is reported as a contention upper bound but NOT charged by
            # the cost model, where cross-warp races are second-order.
            self.counters.atomic_attempts += int(winners.size)
            self.counters.atomic_retries += int(pending.size - winners.size)
            keep = np.ones(pending.size, dtype=bool)
            keep[first] = False
            pending = pending[keep]
            pcodes = pcodes[keep]
        return inserted
