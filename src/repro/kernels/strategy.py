"""Strategy interface + registry for the k-NN maintenance kernels.

A :class:`Strategy` turns batches of candidate point pairs into updates of a
:class:`~repro.kernels.knn_state.KnnState`.  The two entry points mirror the
two kernel launches of the paper's pipeline:

* :meth:`Strategy.update_leaf` - the RP-forest *leaf all-pairs* kernel:
  every pair of points inside one leaf is a candidate edge;
* :meth:`Strategy.update_pairs` - the *refinement* kernel: an explicit list
  of (point, candidate) pairs from neighbour-of-neighbour exploration.

Common pre-filtering (drop self-pairs, drop candidates already present in
the target list) lives here; subclasses implement only ``_insert``, the
maintenance discipline that distinguishes the three strategies.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.errors import ConfigurationError
from repro.kernels.counters import OpCounters
from repro.kernels.distance import batched_self_sq_l2, sq_l2_pairs
from repro.kernels.knn_state import KnnState

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs import Observability


def _sanitize_enabled() -> bool:
    """True when ``WKNN_SANITIZE`` asks for sanitized execution."""
    from repro.simt.sanitizer import env_mode

    return env_mode() is not None


class Strategy(ABC):
    """Base class for the three w-KNNG k-NN set maintenance strategies."""

    #: registry key; subclasses set this
    name: str = "?"
    #: distance schedule this strategy uses for leaf all-pairs ("gemm"|"direct")
    distance_method: str = "direct"
    #: pair handling: "unordered" strategies compute each point pair once
    #: and insert into *both* endpoints' lists (safe because their
    #: synchronisation - lock or CAS - permits scattered concurrent writers);
    #: "directed" strategies compute both directions but each warp updates
    #: only its own row (the tiled design, which needs no cross-warp sync)
    pair_mode: str = "unordered"

    def __init__(self) -> None:
        self.counters = OpCounters()
        #: optional observability session; when attached (the builder does
        #: this), every entry-point call is reported as a kernel dispatch
        #: (``kernel_dispatch:before``/``:after`` hooks plus ``dispatch/``
        #: timing metrics)
        self.obs: "Observability | None" = None

    def obs_attrs(self) -> dict:
        """Strategy-specific attributes attached to dispatch hook payloads."""
        return {"pair_mode": self.pair_mode}

    def _dispatch_begin(self, kernel: str, **payload) -> float | None:
        obs = self.obs
        if obs is None:
            return None
        from repro.obs.hooks import Events

        obs.hooks.emit(Events.KERNEL_DISPATCH_BEFORE, kernel=kernel,
                       strategy=self.name, **self.obs_attrs(), **payload)
        return time.perf_counter()

    def _dispatch_end(self, t0: float | None, kernel: str, inserted: int,
                      **payload) -> None:
        obs = self.obs
        if obs is None or t0 is None:
            return
        from repro.obs.hooks import Events

        seconds = time.perf_counter() - t0
        obs.metrics.counter(f"dispatch/{kernel}/launches").inc()
        obs.metrics.histogram(f"dispatch/{kernel}/seconds").observe(seconds)
        obs.hooks.emit(Events.KERNEL_DISPATCH_AFTER, kernel=kernel,
                       strategy=self.name, seconds=seconds, inserted=inserted,
                       **self.obs_attrs(), **payload)

    # -- public entry points -----------------------------------------------

    def update_leaf(self, state: KnnState, x: np.ndarray, leaf_ids: np.ndarray) -> int:
        """Offer every ordered pair within one RP-forest leaf.

        Returns the number of candidates inserted.
        """
        leaf_ids = np.asarray(leaf_ids, dtype=np.int64)
        if leaf_ids.shape[0] < 2:
            return 0
        return self.update_leaf_batch(
            state, x, leaf_ids[None, :], np.array([leaf_ids.shape[0]], dtype=np.int64)
        )

    def update_leaf_batch(
        self,
        state: KnnState,
        x: np.ndarray,
        leaves: np.ndarray,
        lengths: np.ndarray,
        dedupe: bool = False,
    ) -> int:
        """Offer all within-leaf pairs for a *batch* of padded leaves.

        This is how the builder launches the leaf all-pairs kernel: many
        leaves of one tree at a time (a grid of blocks on the GPU; one
        batched distance tensor here).  Leaves in a batch must be mutually
        disjoint (true for leaves of a classic RP tree), so the batch
        contains no duplicate (row, col) pairs; for *spill* trees whose
        leaves overlap, pass ``dedupe=True`` and duplicates are removed
        after the (already spent) distance computation.

        Parameters
        ----------
        leaves:
            ``(b, m)`` int64 matrix of point ids, rows padded to the batch
            width with arbitrary valid ids (masked out by ``lengths``).
        lengths:
            ``(b,)`` true leaf sizes.
        dedupe:
            Remove duplicate (row, col) pairs before insertion (needed
            when leaves may overlap).

        Returns
        -------
        Number of candidates inserted.
        """
        leaves = np.asarray(leaves, dtype=np.int64)
        lengths = np.asarray(lengths, dtype=np.int64)
        b, m = leaves.shape
        t0 = self._dispatch_begin(
            f"leaf_allpairs/{self.name}", batch_leaves=int(b), batch_width=int(m)
        )
        pts = x[leaves]
        dmat = batched_self_sq_l2(pts, self.distance_method)
        in_leaf = np.arange(m)[None, :] < lengths[:, None]
        pair_valid = in_leaf[:, :, None] & in_leaf[:, None, :]
        if self.pair_mode == "unordered":
            # each unordered pair computed once, inserted into both rows
            triu = np.triu(np.ones((m, m), dtype=bool), k=1)
            pair_valid &= triu[None, :, :]
            self.counters.distance_evals += int(pair_valid.sum())
            i_side = np.broadcast_to(leaves[:, :, None], (b, m, m))[pair_valid]
            j_side = np.broadcast_to(leaves[:, None, :], (b, m, m))[pair_valid]
            d = dmat[pair_valid]
            rows = np.concatenate([i_side, j_side])
            cols = np.concatenate([j_side, i_side])
            dists = np.concatenate([d, d])
        else:
            diag = np.eye(m, dtype=bool)
            pair_valid &= ~diag[None, :, :]
            self.counters.distance_evals += int(pair_valid.sum())
            rows = np.broadcast_to(leaves[:, :, None], (b, m, m))[pair_valid]
            cols = np.broadcast_to(leaves[:, None, :], (b, m, m))[pair_valid]
            dists = dmat[pair_valid]
        if dedupe and rows.size:
            key = rows * np.int64(state.n) + cols
            _, first = np.unique(key, return_index=True)
            rows, cols, dists = rows[first], cols[first], dists[first]
        inserted = self.insert(state, rows, cols, dists)
        self._dispatch_end(
            t0, f"leaf_allpairs/{self.name}", inserted,
            batch_leaves=int(b), candidates=int(rows.size),
        )
        return inserted

    def update_pairs(
        self, state: KnnState, x: np.ndarray, rows: np.ndarray, cols: np.ndarray
    ) -> int:
        """Offer an explicit candidate pair list (refinement phase).

        ``rows``/``cols`` must be per-row deduplicated by the caller (the
        builder guarantees this); self-pairs are tolerated and dropped.
        Returns the number of candidates inserted.
        """
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        keep = rows != cols
        rows, cols = rows[keep], cols[keep]
        if rows.size == 0:
            return 0
        t0 = self._dispatch_begin(
            f"refine_pairs/{self.name}", pairs=int(rows.size)
        )
        if self.pair_mode == "unordered":
            # canonicalise to unordered pairs: compute once, insert twice
            lo = np.minimum(rows, cols)
            hi = np.maximum(rows, cols)
            key = lo * np.int64(state.n) + hi
            uniq = np.unique(key)
            lo = (uniq // state.n).astype(np.int64)
            hi = (uniq % state.n).astype(np.int64)
            d = sq_l2_pairs(x, lo, hi)
            self.counters.distance_evals += int(lo.size)
            rows = np.concatenate([lo, hi])
            cols = np.concatenate([hi, lo])
            dists = np.concatenate([d, d])
        else:
            # dedupe directed pairs: a duplicated (row, col) in one batch
            # would enter the bulk merge twice and occupy two slots
            key = rows * np.int64(state.n) + cols
            uniq = np.unique(key)
            rows = (uniq // state.n).astype(np.int64)
            cols = (uniq % state.n).astype(np.int64)
            dists = sq_l2_pairs(x, rows, cols)
            self.counters.distance_evals += int(rows.size)
        inserted = self.insert(state, rows, cols, dists)
        self._dispatch_end(
            t0, f"refine_pairs/{self.name}", inserted, pairs=int(rows.size)
        )
        return inserted

    # -- shared filtering + dispatch ------------------------------------------

    def insert(
        self, state: KnnState, rows: np.ndarray, cols: np.ndarray, dists: np.ndarray
    ) -> int:
        """Filter candidates and hand the survivors to the strategy kernel.

        Filtering performs the two O(k) scans every warp variant does before
        attempting an insertion: membership ("is j already in i's list?") and
        the quick reject against the row's current worst distance.
        """
        if rows.size == 0:
            return 0
        self.counters.candidates_seen += int(rows.size)
        keep = ~state.contains(rows, cols)
        keep &= dists < state.row_max(rows)
        rows, cols, dists = rows[keep], cols[keep], dists[keep]
        if rows.size == 0:
            return 0
        self.counters.candidates_offered += int(rows.size)
        if _sanitize_enabled():
            self._check_batch_unique(state, rows, cols)
        inserted = self._insert(state, rows, cols, dists)
        self.counters.candidates_inserted += inserted
        return inserted

    @staticmethod
    def _check_batch_unique(state: KnnState, rows: np.ndarray, cols: np.ndarray) -> None:
        """Host-side wksan analogue of the duplicate-scatter detector.

        ``_insert`` implementations use NumPy fancy assignment, which
        silently applies last-write-wins when the same ``(row, col)`` pair
        appears twice in a batch - the vectorised twin of two CUDA lanes
        scattering to one address.  Under ``WKNN_SANITIZE`` a duplicate is
        an error rather than silent double occupancy.
        """
        if rows.size == 0:
            return
        key = rows * np.int64(state.n) + cols
        uniq, counts = np.unique(key, return_counts=True)
        if (counts > 1).any():
            from repro.errors import RaceError

            bad = int(uniq[counts > 1][0])
            raise RaceError(
                f"wksan [vectorized insert]: duplicate (row, col) pair "
                f"({bad // state.n}, {bad % state.n}) within one candidate "
                f"batch; fancy assignment would silently keep the last "
                f"occurrence (see Strategy._insert preconditions)"
            )

    @abstractmethod
    def _insert(
        self, state: KnnState, rows: np.ndarray, cols: np.ndarray, dists: np.ndarray
    ) -> int:
        """Apply the strategy's maintenance discipline; returns #inserted.

        Preconditions guaranteed by :meth:`insert`: no self pairs, no
        candidate already present in its row, every candidate beats its
        row's current maximum, and (from the builder) no duplicate
        ``(row, col)`` pairs within the batch.
        """

    def reset_counters(self) -> OpCounters:
        """Zero the counters, returning the pre-reset values."""
        old = self.counters
        self.counters = OpCounters()
        return old


_REGISTRY: dict[str, Callable[..., Strategy]] = {}


def register_strategy(cls):
    """Class decorator adding a Strategy subclass to the name registry."""
    _REGISTRY[cls.name] = cls
    return cls


def available_strategies() -> tuple[str, ...]:
    """Names accepted by :func:`get_strategy` (and ``BuildConfig.strategy``)."""
    return tuple(sorted(_REGISTRY))


def get_strategy(name: str, **kwargs) -> Strategy:
    """Instantiate a maintenance strategy by registry name."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown strategy {name!r}; available: {available_strategies()}"
        ) from None
    return cls(**kwargs)
