"""w-KNNG **baseline** strategy: per-point lock + warp scan-and-replace.

The straightforward warp-centric discipline (the paper's unnamed third
variant, which the named ones improve on): to insert a candidate into point
``i``'s global-memory list, the warp

1. acquires a per-point spinlock,
2. scans the ``k`` slots to find the current maximum (a warp-parallel scan
   plus reduction),
3. replaces the maximum if the candidate beats it,
4. releases the lock.

The lock serialises all updates that touch the same point, so the cost is
proportional to the *total number of candidates per point*, with no overlap.
The vectorised analogue processes each row's candidate group one at a time
(a Python-level loop over rows - deliberately serial per point) and counts
one ``lock_acquisition`` per row-group.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.knn_state import KnnState
from repro.kernels.strategy import Strategy, register_strategy
from repro.utils.arrays import segment_lengths


@register_strategy
class BaselineStrategy(Strategy):
    """Lock-based linear-scan maintenance (see module docstring)."""

    name = "baseline"
    distance_method = "direct"
    pair_mode = "unordered"

    def obs_attrs(self) -> dict:
        """Dispatch payload: the baseline discipline is a per-point lock."""
        return {**super().obs_attrs(), "discipline": "lock"}

    def _insert(
        self, state: KnnState, rows: np.ndarray, cols: np.ndarray, dists: np.ndarray
    ) -> int:
        order = np.argsort(rows, kind="stable")
        srows = rows[order]
        scols = cols[order].astype(np.int32)
        sdists = dists[order]
        urows, starts, counts = segment_lengths(srows)
        self.counters.lock_acquisitions += int(urows.size)
        k = state.k
        inserted = 0
        ids, dmat = state.ids, state.dists
        for row, start, count in zip(urows, starts, counts):
            # -- lock held: serial scan-and-replace for this point ----------
            cur_d = dmat[row]
            cur_i = ids[row]
            cand_d = sdists[start : start + count]
            cand_i = scols[start : start + count]
            merged_d = np.concatenate([cur_d, cand_d])
            merged_i = np.concatenate([cur_i, cand_i])
            sel = np.argpartition(merged_d, k - 1)[:k]
            inserted += int(((sel >= k) & np.isfinite(merged_d[sel])).sum())
            dmat[row] = merged_d[sel]
            ids[row] = merged_i[sel]
        return inserted
