"""Squared-Euclidean distance kernels.

Two computation schedules are provided because the paper's strategies use
two different ones on the GPU:

* :func:`pairwise_sq_l2_gemm` - the blocked **GEMM decomposition**
  ``|a-b|^2 = |a|^2 + |b|^2 - 2 a.b``.  On a GPU this is the schedule you
  get by tiling point coordinates through shared memory (data reuse across
  pairs); in NumPy it maps to one BLAS matrix product.  This is the tiled
  strategy's schedule, and the reason it wins at high dimensionality.
* :func:`pairwise_sq_l2_direct` - the **direct per-pair accumulation**
  ``sum_c (a_c - b_c)^2`` evaluated without cross-pair reuse.  On a GPU
  each warp streams both points from global memory; in NumPy it maps to
  broadcast subtract/square/sum over dimension chunks.  This is what the
  baseline and atomic strategies do.

Both return float32 and clamp tiny negative values produced by the GEMM
rearrangement to zero (so downstream packing, which requires non-negative
distances, is safe).

Distances are *squared* L2 throughout the library: monotone with L2, so
neighbour sets are identical, and it avoids N^2 square roots - the same
choice FAISS and the paper's kernels make.
"""

from __future__ import annotations

import numpy as np

from repro.utils.arrays import blockwise_ranges

#: dimension-chunk width for the direct schedule (keeps the broadcast
#: temporaries cache-sized, mirroring the register blocking of a kernel)
_DIRECT_DIM_CHUNK = 16


def pairwise_sq_l2_gemm(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """All-pairs squared L2 via the GEMM decomposition.

    Parameters
    ----------
    a, b:
        ``(m, d)`` and ``(n, d)`` float32 matrices.

    Returns
    -------
    ``(m, n)`` float32 distance matrix.
    """
    a2 = np.einsum("ij,ij->i", a, a, dtype=np.float32)
    b2 = np.einsum("ij,ij->i", b, b, dtype=np.float32)
    d = a2[:, None] + b2[None, :] - 2.0 * (a @ b.T)
    np.maximum(d, 0.0, out=d)
    return d.astype(np.float32, copy=False)


def pairwise_sq_l2_direct(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """All-pairs squared L2 via direct per-pair accumulation.

    Computes the same matrix as :func:`pairwise_sq_l2_gemm` but with the
    no-reuse schedule: explicit differences accumulated over dimension
    chunks.  Intentionally O(m*n*d) with broadcast temporaries - this *is*
    the cost profile being modelled, do not "optimise" it into GEMM.
    """
    m, dim = a.shape
    n = b.shape[0]
    acc = np.zeros((m, n), dtype=np.float32)
    for c0, c1 in blockwise_ranges(dim, _DIRECT_DIM_CHUNK):
        diff = a[:, None, c0:c1] - b[None, :, c0:c1]
        np.square(diff, out=diff)
        acc += diff.sum(axis=2)
    return acc


def pairwise_sq_l2(a: np.ndarray, b: np.ndarray, method: str = "gemm") -> np.ndarray:
    """All-pairs squared L2 with an explicit schedule choice."""
    if method == "gemm":
        return pairwise_sq_l2_gemm(a, b)
    if method == "direct":
        return pairwise_sq_l2_direct(a, b)
    raise ValueError(f"unknown distance method {method!r}; use 'gemm' or 'direct'")


def batched_self_sq_l2(pts: np.ndarray, method: str = "gemm") -> np.ndarray:
    """All-pairs squared L2 within each batch entry.

    Parameters
    ----------
    pts:
        ``(b, m, d)`` float32 batch of point groups (e.g. padded RP-forest
        leaves).
    method:
        ``"gemm"`` (batched matmul; the tiled schedule) or ``"direct"``
        (chunked broadcast accumulation; the baseline/atomic schedule).

    Returns
    -------
    ``(b, m, m)`` float32 distance tensor.
    """
    if method == "gemm":
        sq = np.einsum("bld,bld->bl", pts, pts, dtype=np.float32)
        d = sq[:, :, None] + sq[:, None, :] - 2.0 * (pts @ pts.transpose(0, 2, 1))
        np.maximum(d, 0.0, out=d)
        return d.astype(np.float32, copy=False)
    if method == "direct":
        b, m, dim = pts.shape
        acc = np.zeros((b, m, m), dtype=np.float32)
        for c0, c1 in blockwise_ranges(dim, _DIRECT_DIM_CHUNK):
            diff = pts[:, :, None, c0:c1] - pts[:, None, :, c0:c1]
            np.square(diff, out=diff)
            acc += diff.sum(axis=3)
        return acc
    raise ValueError(f"unknown distance method {method!r}; use 'gemm' or 'direct'")


#: element budget for the gather temporaries of :func:`sq_l2_query_gather`
_GATHER_CHUNK_ELEMS = 1 << 22


def rowwise_sq_norm(diff: np.ndarray) -> np.ndarray:
    """``|diff[i]|^2`` per row (square, then pairwise-sum the trailing axis).

    The single squared-norm microkernel shared by every query-time
    distance path (batched engine *and* the legacy per-query loop), so
    engines that must agree bitwise reduce in the same order.
    """
    np.square(diff, out=diff)
    return diff.sum(axis=1)


def sq_l2_query_gather(
    queries: np.ndarray,
    x: np.ndarray,
    cand_ids: np.ndarray,
    valid_pairs: tuple[np.ndarray, np.ndarray] | None = None,
) -> np.ndarray:
    """Per-query candidate distances via one batched gather.

    Computes ``out[i, j] = |queries[i] - x[cand_ids[i, j]]|^2`` for a
    ``(m, c)`` candidate-id matrix - the query-time analogue of the leaf
    batch kernels: the graph-guided search engine hands every live query's
    frontier neighbours over as one matrix and gets all distances back
    from a single call.

    Invalid candidate slots (``cand_ids < 0``) yield ``+inf``.  Processed
    in pair chunks so the gather temporaries stay bounded; the reduction
    is :func:`rowwise_sq_norm`, bitwise-identical to the per-query loop.
    ``valid_pairs`` lets a caller that already knows the live ``(row,
    col)`` positions (e.g. from its visited-filter mask) skip the
    ``nonzero`` scan.
    """
    m, c = cand_ids.shape
    dim = x.shape[1]
    out = np.full((m, c), np.inf, dtype=np.float32)
    if m == 0 or c == 0:
        return out
    # compact to the live (query, candidate) pairs so masked slots cost
    # nothing (typical for beam search, where most gathered neighbours
    # are already visited)
    rr, cc = np.nonzero(cand_ids >= 0) if valid_pairs is None else valid_pairs
    flat = rr * c + cc
    ids = cand_ids.reshape(-1).take(flat)
    out_flat = out.reshape(-1)
    pairs = max(1, _GATHER_CHUNK_ELEMS // max(1, dim))
    for s, e in blockwise_ranges(rr.shape[0], pairs):
        diff = x.take(ids[s:e], axis=0)
        np.subtract(diff, queries.take(rr[s:e], axis=0), out=diff)
        out_flat[flat[s:e]] = rowwise_sq_norm(diff)
    return out


def sq8_l2_query_gather(
    codes: np.ndarray,
    lo: np.ndarray,
    scale: np.ndarray,
    queries: np.ndarray,
    cand_ids: np.ndarray,
    valid_pairs: tuple[np.ndarray, np.ndarray] | None = None,
) -> np.ndarray:
    """Scalar-quantized candidate scoring: gather codes, decode, score.

    The sq8 counterpart of :func:`sq_l2_query_gather`: candidates live as
    ``(n, d)`` uint8 codes with per-dimension affine parameters
    (``x_hat = lo + scale * code``), so the gather touches ``d`` bytes per
    candidate instead of ``4d`` and the decode is two vectorised passes.
    This beats table-lookup ADC for scalar quantization, where one
    "sub-space" per dimension would mean ``d`` scattered lookups per
    candidate; distances are against the *decoded* vectors, identical to
    ``adc_l2_query_gather`` on the sq8 grid tables up to float rounding.
    """
    m, c = cand_ids.shape
    dim = codes.shape[1]
    out = np.full((m, c), np.inf, dtype=np.float32)
    if m == 0 or c == 0:
        return out
    rr, cc = np.nonzero(cand_ids >= 0) if valid_pairs is None else valid_pairs
    flat = rr * c + cc
    ids = cand_ids.reshape(-1).take(flat)
    out_flat = out.reshape(-1)
    pairs = max(1, _GATHER_CHUNK_ELEMS // max(1, dim))
    for s, e in blockwise_ranges(rr.shape[0], pairs):
        decoded = codes.take(ids[s:e], axis=0).astype(np.float32)
        decoded *= scale
        decoded += lo
        np.subtract(decoded, queries.take(rr[s:e], axis=0), out=decoded)
        out_flat[flat[s:e]] = rowwise_sq_norm(decoded)
    return out


def adc_l2_query_gather(
    luts: np.ndarray,
    codes: np.ndarray,
    cand_ids: np.ndarray,
    valid_pairs: tuple[np.ndarray, np.ndarray] | None = None,
    lut_rows: np.ndarray | None = None,
) -> np.ndarray:
    """Asymmetric-distance candidate scoring via lookup-table gathers.

    The quantized counterpart of :func:`sq_l2_query_gather`: the database
    side is a ``(n, M)`` uint8 code matrix (one sub-space code per column,
    see :mod:`repro.core.quant`) and each query ``i`` carries a
    pre-computed table ``luts[i, m, c]`` of partial squared distances to
    codebook entry ``c`` of sub-space ``m``.  A candidate's distance is
    then ``sum_m luts[i, m, codes[id, m]]`` - ``M`` table lookups instead
    of a ``d``-dimensional subtract/square/sum, and the per-candidate
    gather touches ``M`` bytes of codes instead of ``4d`` bytes of floats.

    Parameters
    ----------
    luts:
        ``(m_queries, M, ksub)`` float32 per-query tables (contiguous).
    codes:
        ``(n, M)`` uint8 code matrix.
    cand_ids:
        ``(m_queries, c)`` candidate-id matrix; slots ``< 0`` yield
        ``+inf`` exactly like the full-precision kernel.
    valid_pairs:
        optional pre-compacted live ``(row, col)`` positions.
    lut_rows:
        optional ``(m_queries,)`` indirection mapping each candidate row
        to its table row in ``luts``.  Lets a caller that compacts its
        live-query state every round keep one full LUT block and shrink
        only this index vector, instead of copying megabytes of tables.

    Returns
    -------
    ``(m_queries, c)`` float32 approximate squared distances.
    """
    m, c = cand_ids.shape
    n_sub, ksub = luts.shape[1], luts.shape[2]
    out = np.full((m, c), np.inf, dtype=np.float32)
    if m == 0 or c == 0:
        return out
    rr, cc = np.nonzero(cand_ids >= 0) if valid_pairs is None else valid_pairs
    flat = rr * c + cc
    lut_rr = rr if lut_rows is None else lut_rows.take(rr)
    ids = cand_ids.reshape(-1).take(flat)
    out_flat = out.reshape(-1)
    lut_flat = np.ascontiguousarray(luts, dtype=np.float32).reshape(-1)
    # flat index of entry (query rr, sub-space j, code codes[id, j]):
    #   rr*(M*ksub) + j*ksub + code.  Accumulated one sub-space at a
    #   time: M one-dimensional takes beat a single (pairs, M) fancy
    #   gather because no (pairs, M) index matrix is ever materialised -
    #   only the running float32 accumulator and one index vector.
    pairs = max(1, _GATHER_CHUNK_ELEMS // max(1, n_sub))
    for s, e in blockwise_ranges(rr.shape[0], pairs):
        code_rows = codes.take(ids[s:e], axis=0)
        base = lut_rr[s:e] * (n_sub * ksub)
        idx = base + code_rows[:, 0]
        acc = lut_flat.take(idx)
        for j in range(1, n_sub):
            # walk base to sub-space j in place and reuse one index
            # buffer: the inner loop allocates nothing
            np.add(base, ksub, out=base)
            np.add(base, code_rows[:, j], out=idx)
            acc += lut_flat.take(idx)
        out_flat[flat[s:e]] = acc
    return out


def sq_l2_pairs(
    x: np.ndarray, rows: np.ndarray, cols: np.ndarray, chunk: int = 1 << 18
) -> np.ndarray:
    """Squared L2 for an explicit pair list ``(rows[i], cols[i])``.

    Used by the refinement phase, where candidate pairs have no all-pairs
    structure to exploit.  Processed in chunks to bound the gather
    temporaries.
    """
    out = np.empty(rows.shape[0], dtype=np.float32)
    for s, e in blockwise_ranges(rows.shape[0], chunk):
        diff = x[rows[s:e]] - x[cols[s:e]]
        np.square(diff, out=diff)
        out[s:e] = diff.sum(axis=1)
    return out
