"""Warp-level collective algorithms built from shuffle intrinsics.

These mirror the device functions a CUDA implementation would build from
``__shfl_xor_sync``: an in-register bitonic sorter (used by the tiled
strategy to sort candidate tiles before merging) and a key-value warp merge.

Costs are charged through the :class:`~repro.simt.warp.WarpContext` shuffle
intrinsics themselves, so a bitonic sort of a 32-lane warp is billed its
real ``O(log^2 W)`` compare-exchange stages.
"""

from __future__ import annotations

import numpy as np

from repro.simt.warp import WarpContext


def warp_bitonic_sort(
    ctx: WarpContext, keys: np.ndarray, values: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Sort one register pair across the warp by ascending key.

    Implements the standard in-register bitonic network: ``log2(W)`` merge
    phases, phase ``p`` consisting of ``p+1`` butterfly compare-exchange
    steps done with ``shfl_xor``.  Lanes that are "upper" in a butterfly
    keep the max, "lower" lanes keep the min; the direction alternates to
    build bitonic sequences, exactly as the CUDA device function does.

    Parameters
    ----------
    ctx:
        The warp context (provides ``shfl_xor`` and lane ids).
    keys, values:
        Per-lane registers.  Sorting is by ``keys``; ``values`` ride along.

    Returns
    -------
    (keys, values) sorted ascending by key across lanes.
    """
    w = ctx.warp_size
    lane = ctx.lane_id
    keys = np.asarray(keys).copy()
    values = np.asarray(values).copy()
    n_phases = int(np.log2(w))
    for phase in range(1, n_phases + 1):
        block = 1 << phase
        # ascending within even blocks, descending within odd -> bitonic
        for step in range(phase - 1, -1, -1):
            stride = 1 << step
            partner_keys = ctx.shfl_xor(keys, stride)
            partner_vals = ctx.shfl_xor(values, stride)
            lane_is_upper = (lane & stride) != 0
            descending = (lane & block) != 0
            ctx.alu(3)  # compare + two selects
            keep_max = lane_is_upper ^ descending
            take_partner = np.where(
                keep_max, partner_keys > keys, partner_keys < keys
            )
            # NaN-free inputs assumed (validated at API boundary)
            keys = np.where(take_partner, partner_keys, keys)
            values = np.where(take_partner, partner_vals, values)
    return keys, values


def warp_sorted_merge_max(
    ctx: WarpContext,
    keys_a: np.ndarray,
    vals_a: np.ndarray,
    keys_b: np.ndarray,
    vals_b: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Merge two ascending-sorted warp registers, keeping the W smallest.

    This is the bulk-merge device function of the tiled strategy: the global
    k-NN list (sorted, register A) is merged with a sorted candidate tile
    (register B); the smallest ``W`` of the ``2W`` keys survive.

    The classic trick: if A and B are each ascending-sorted, then
    ``min(A[i], B[W-1-i])`` for each lane ``i`` yields the W smallest
    elements overall (as a bitonic sequence), which one final
    :func:`warp_bitonic_sort` cleans up.
    """
    w = ctx.warp_size
    rev = w - 1 - ctx.lane_id
    keys_b_rev = ctx.shfl(keys_b, rev)
    vals_b_rev = ctx.shfl(vals_b, rev)
    ctx.alu(2)
    take_b = keys_b_rev < keys_a
    merged_keys = np.where(take_b, keys_b_rev, keys_a)
    merged_vals = np.where(take_b, vals_b_rev, vals_a)
    return warp_bitonic_sort(ctx, merged_keys, merged_vals)
