"""Atomic read-modify-write operations on global buffers.

The w-KNNG *atomic* strategy relies on lock-free updates of k-NN lists held
in global memory, using 64-bit packed (distance, id) words so a single
``atomicMax``/``atomicMin`` both compares by distance and swaps in the id.
This module provides those primitives with faithful semantics:

* every active lane performs its operation and observes the value the target
  word held immediately before *its own* operation (hardware leaves the
  order unspecified; we serialise in ascending lane order, which is a legal
  ordering and deterministic for tests);
* lanes of one warp hitting the same address serialise - counted as
  ``atomic_conflicts`` in the metrics, the contention signal the paper's
  atomic strategy is sensitive to at large K.

Also here: the float packing helpers.  IEEE-754 non-negative floats compare
identically to their bit patterns interpreted as unsigned integers, so a
packed word ``(float_bits << 32) | id`` preserves distance order under
unsigned comparison - the classic CUDA trick the atomic strategy uses.
"""

from __future__ import annotations

import numpy as np

from repro.errors import AtomicError
from repro.simt.memory import GlobalBuffer
from repro.simt.metrics import KernelMetrics

_INT_KINDS = ("i", "u")


def pack_dist_id(dist: np.ndarray, ids: np.ndarray) -> np.ndarray:
    """Pack non-negative float32 distances and int32 ids into uint64 words.

    The distance occupies the high 32 bits, so unsigned comparison of packed
    words orders by distance first (ids break ties).  Distances must be
    non-negative (squared L2 distances always are); negative inputs raise.

    Ids must fit int32: only the low 32 bits are stored, so an out-of-range
    id would silently alias another point (e.g. ``-1`` and ``0xFFFFFFFF``
    become the same word).  Out-of-range ids raise :class:`AtomicError`
    instead of corrupting the packed word.
    """
    d = np.asarray(dist, dtype=np.float32)
    if d.size and float(np.min(d)) < 0.0:
        raise AtomicError("pack_dist_id requires non-negative distances")
    i = np.asarray(ids).astype(np.int64)
    if i.size:
        lo_id, hi_id = int(i.min()), int(i.max())
        if lo_id < -(2**31) or hi_id >= 2**31:
            raise AtomicError(
                f"pack_dist_id ids must fit int32 (got range [{lo_id}, {hi_id}]); "
                f"ids outside it would alias other points in the packed word"
            )
    hi = d.view(np.uint32).astype(np.uint64) << np.uint64(32)
    lo = i.astype(np.uint64) & np.uint64(0xFFFFFFFF)
    return hi | lo


def unpack_dist_id(packed: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Inverse of :func:`pack_dist_id` -> ``(float32 dist, int32 id)``."""
    p = np.asarray(packed, dtype=np.uint64)
    hi = (p >> np.uint64(32)).astype(np.uint32)
    dist = hi.view(np.float32)
    ids = (p & np.uint64(0xFFFFFFFF)).astype(np.uint32).astype(np.int64)
    # ids were int32; restore sign for sentinel values such as -1
    ids = np.where(ids >= 2**31, ids - 2**32, ids).astype(np.int32)
    return dist, ids


#: packed word representing "empty slot": +inf distance, id -1 (sorts last)
EMPTY_PACKED = int(pack_dist_id(np.float32(np.inf), np.int32(-1)))


class AtomicUnit:
    """Executes warp-wide atomics against :class:`GlobalBuffer` objects.

    ``ctx`` (the issuing warp context, when there is one) lets the wksan
    sanitizer record each RMW as an ``atomic`` access event - atomics are
    ordered against each other and against plain reads, but an atomic
    against a plain *write* of the same word is still a race.
    """

    def __init__(self, metrics: KernelMetrics, ctx=None) -> None:
        self._metrics = metrics
        self._ctx = ctx

    def _prepare(
        self, buf: GlobalBuffer, idx: np.ndarray, mask: np.ndarray, op: str
    ) -> np.ndarray:
        if buf.dtype.kind not in _INT_KINDS and op not in ("add", "exch", "cas"):
            raise AtomicError(
                f"atomic_{op} supports integer buffers only, got {buf.dtype} "
                f"for {buf.name!r}; pack floats with pack_dist_id()"
            )
        ctx = self._ctx
        if ctx is not None and ctx.sanitizer is not None:
            ctx.sanitizer.global_access(buf, idx, mask, "atomic", ctx)
        buf._check_bounds(idx, mask)
        lanes = np.flatnonzero(mask)
        active = idx[lanes]
        self._metrics.atomic_ops += int(lanes.size)
        if active.size:
            _, counts = np.unique(active, return_counts=True)
            self._metrics.atomic_conflicts += int((counts - 1).sum())
        if not mask.all():
            self._metrics.predicated_ops += 1
        return lanes

    def _rmw(self, buf, idx, values, mask, op, combine) -> np.ndarray:
        lanes = self._prepare(buf, idx, mask, op)
        raw = buf.raw
        vals = np.asarray(values, dtype=raw.dtype)
        if vals.ndim == 0:
            vals = np.full(idx.shape, vals, dtype=raw.dtype)
        old = np.zeros(idx.shape, dtype=raw.dtype)
        for lane in lanes:
            addr = idx[lane]
            old[lane] = raw[addr]
            raw[addr] = combine(raw[addr], vals[lane])
        return old

    def add(self, buf: GlobalBuffer, idx, values, mask) -> np.ndarray:
        """``atomicAdd``: returns the pre-op value per lane."""
        return self._rmw(buf, idx, values, mask, "add", lambda a, b: a + b)

    def max(self, buf: GlobalBuffer, idx, values, mask) -> np.ndarray:
        """``atomicMax`` (integer/unsigned buffers)."""
        return self._rmw(buf, idx, values, mask, "max", max)

    def min(self, buf: GlobalBuffer, idx, values, mask) -> np.ndarray:
        """``atomicMin`` (integer/unsigned buffers)."""
        return self._rmw(buf, idx, values, mask, "min", min)

    def exch(self, buf: GlobalBuffer, idx, values, mask) -> np.ndarray:
        """``atomicExch``: unconditional swap, returns the pre-op value."""
        return self._rmw(buf, idx, values, mask, "exch", lambda _a, b: b)

    def cas(self, buf: GlobalBuffer, idx, compare, values, mask) -> np.ndarray:
        """``atomicCAS``: write ``values`` where the word equals ``compare``.

        Returns the pre-op value per lane; the op succeeded for a lane iff
        the returned value equals that lane's ``compare``.
        """
        lanes = self._prepare(buf, idx, mask, "cas")
        raw = buf.raw
        cmp = np.asarray(compare, dtype=raw.dtype)
        vals = np.asarray(values, dtype=raw.dtype)
        if cmp.ndim == 0:
            cmp = np.full(idx.shape, cmp, dtype=raw.dtype)
        if vals.ndim == 0:
            vals = np.full(idx.shape, vals, dtype=raw.dtype)
        old = np.zeros(idx.shape, dtype=raw.dtype)
        for lane in lanes:
            addr = idx[lane]
            old[lane] = raw[addr]
            if raw[addr] == cmp[lane]:
                raw[addr] = vals[lane]
        return old
