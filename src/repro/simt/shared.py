"""Simulated per-block shared memory with a bank-conflict model.

Each thread block owns one :class:`SharedMemory` arena.  Kernels allocate
named regions lazily (the first warp to ask creates the region; all warps of
the block see the same storage), mirroring CUDA's ``__shared__`` arrays.

Bank conflicts follow the standard rule: shared memory is divided into
``shared_banks`` word-wide banks; when active lanes of a warp access more
than one *distinct address* that maps to the same bank, the access replays
once per extra address.  Lanes reading the *same* address broadcast and do
not conflict.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MemoryAccessError
from repro.simt.config import DeviceConfig
from repro.simt.metrics import KernelMetrics


class SharedMemory:
    """Shared-memory arena for one thread block."""

    def __init__(
        self, config: DeviceConfig, metrics: KernelMetrics, block_id: int = 0
    ) -> None:
        self._config = config
        self._metrics = metrics
        self._regions: dict[str, np.ndarray] = {}
        #: names by region identity, for sanitizer reports
        self._names: dict[int, str] = {}
        #: owning block (sanitizer scopes shared shadow state per block)
        self.block_id = block_id

    def allocate(self, name: str, shape: tuple[int, ...] | int, dtype) -> np.ndarray:
        """Return the named region, creating it (zero-filled) on first use.

        Re-requesting an existing name with a different shape/dtype is a
        programming error and raises :class:`MemoryAccessError`.
        """
        if isinstance(shape, int):
            shape = (shape,)
        dtype = np.dtype(dtype)
        region = self._regions.get(name)
        if region is None:
            # zero-filled for determinism; CUDA ``__shared__`` contents are
            # undefined, which the wksan sanitizer enforces independently by
            # flagging loads of never-stored words
            region = np.zeros(shape, dtype=dtype)
            self._regions[name] = region
            self._names[id(region)] = name
            return region
        if region.shape != tuple(shape) or region.dtype != dtype:
            raise MemoryAccessError(
                f"shared region {name!r} re-declared with shape {shape}/{dtype}, "
                f"but it exists with {region.shape}/{region.dtype}"
            )
        return region

    # -- accounted access ---------------------------------------------------

    def _conflict_passes(self, region: np.ndarray, idx: np.ndarray, mask: np.ndarray) -> int:
        """Serialised passes beyond the first for a warp access at ``idx``."""
        active = idx[mask]
        if active.size == 0:
            return 0
        unique_addrs = np.unique(active.astype(np.int64))
        words_per_elem = max(1, region.itemsize // self._config.bank_width_bytes)
        banks = (unique_addrs * words_per_elem) % self._config.shared_banks
        _, counts = np.unique(banks, return_counts=True)
        return int(counts.max()) - 1

    def _check(self, region: np.ndarray, idx: np.ndarray, mask: np.ndarray) -> None:
        active = idx[mask]
        if active.size and (active.min() < 0 or active.max() >= region.shape[0]):
            raise MemoryAccessError(
                f"shared-memory access out of bounds (size {region.shape[0]})"
            )

    def _sanitize(self, region: np.ndarray, idx: np.ndarray, mask: np.ndarray,
                  op: str, ctx) -> None:
        if ctx is None or ctx.sanitizer is None:
            return
        name = self._names.get(id(region), "<region>")
        ctx.sanitizer.shared_access(
            self.block_id, name, region.shape[0], idx, mask, op, ctx
        )

    def load(
        self, region: np.ndarray, idx: np.ndarray, mask: np.ndarray, ctx=None
    ) -> np.ndarray:
        """Warp-wide load from a 1-D shared region with conflict accounting."""
        self._sanitize(region, idx, mask, "read", ctx)
        self._check(region, idx, mask)
        out = np.zeros(idx.shape, dtype=region.dtype)
        out[mask] = region[idx[mask]]
        self._metrics.shared_accesses += 1
        self._metrics.shared_bank_conflicts += self._conflict_passes(region, idx, mask)
        return out

    def store(
        self,
        region: np.ndarray,
        idx: np.ndarray,
        values: np.ndarray,
        mask: np.ndarray,
        ctx=None,
    ) -> None:
        """Warp-wide store to a 1-D shared region with conflict accounting."""
        self._sanitize(region, idx, mask, "write", ctx)
        self._check(region, idx, mask)
        vals = np.asarray(values, dtype=region.dtype)
        if vals.ndim == 0:
            vals = np.full(idx.shape, vals, dtype=region.dtype)
        region[idx[mask]] = vals[mask]
        self._metrics.shared_accesses += 1
        self._metrics.shared_bank_conflicts += self._conflict_passes(region, idx, mask)
