"""Device model configuration for the SIMT simulator.

The defaults describe a generic NVIDIA-like device (32-lane warps, 32
shared-memory banks, 128-byte global-memory transaction segments).  The
latency/throughput weights feed the cycle cost model in
:class:`repro.simt.metrics.KernelMetrics`; they are deliberately round
numbers - the simulator is used for *relative* comparisons between kernel
strategies, not absolute time prediction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError


def _check_pow2(value: int, name: str) -> None:
    if value <= 0 or (value & (value - 1)) != 0:
        raise ConfigurationError(f"{name} must be a positive power of two, got {value}")


def _env_sanitize() -> bool:
    from repro.simt.sanitizer import env_mode

    return env_mode() is not None


def _env_sanitize_mode() -> str:
    from repro.simt.sanitizer import env_mode

    return env_mode() or "raise"


@dataclass(frozen=True)
class DeviceConfig:
    """Parameters of the simulated device.

    Attributes
    ----------
    warp_size:
        Lanes per warp (power of two).  CUDA devices use 32.
    shared_banks:
        Number of shared-memory banks; simultaneous accesses by lanes of a
        warp to distinct addresses in the same bank serialise.
    bank_width_bytes:
        Width of one shared-memory bank word (4 bytes on all CUDA devices).
    segment_bytes:
        Global-memory transaction granularity.  A warp load touching ``s``
        distinct segments issues ``s`` transactions; a fully coalesced
        32-lane float32 load touches exactly one 128-byte segment.
    alu_cycles:
        Cost of one warp-wide ALU operation.
    shared_cycles:
        Cost of one conflict-free shared-memory access.
    global_latency_cycles:
        Cost charged per global-memory *transaction* (models latency that
        cannot be hidden, amortised; keeping it per-transaction makes
        coalescing matter, which is the effect the paper's tiled strategy
        exploits).
    atomic_cycles:
        Base cost of one atomic operation; each same-address conflict within
        the warp adds another ``atomic_cycles`` (hardware serialises them).
    cache_bytes:
        *Effective per-block* on-chip cache capacity assumed by the
        analytic cost model (:mod:`repro.bench.costmodel`) when estimating
        how much of a repeatedly-streamed working set (e.g. a leaf's points
        under the direct distance schedule) hits cache instead of DRAM.
        This is a whole L1 divided by the resident blocks sharing it, hence
        smaller than a datasheet L1.  The event-level simulator itself does
        not model a cache; see the cost model's docstring.
    cache_hit_cycles:
        Cost charged per cache-hit transaction by the analytic model.
    sanitize:
        Enable the wksan race detector / memory sanitizer
        (:mod:`repro.simt.sanitizer`).  Defaults from the ``WKNN_SANITIZE``
        environment switch (``1``/``true``/``raise``/``report`` enable).
    sanitize_mode:
        ``"raise"`` stops at the first finding with a
        :class:`~repro.errors.RaceError`; ``"report"`` accumulates findings
        and logs them through the observability layer.  Defaults from
        ``WKNN_SANITIZE`` (``report`` selects report-only mode).
    """

    warp_size: int = 32
    shared_banks: int = 32
    bank_width_bytes: int = 4
    segment_bytes: int = 128
    alu_cycles: int = 1
    shared_cycles: int = 2
    global_latency_cycles: int = 32
    atomic_cycles: int = 16
    cache_bytes: int = 32 * 1024
    cache_hit_cycles: int = 4
    sanitize: bool = field(default_factory=_env_sanitize)
    sanitize_mode: str = field(default_factory=_env_sanitize_mode)

    def __post_init__(self) -> None:
        _check_pow2(self.warp_size, "warp_size")
        _check_pow2(self.shared_banks, "shared_banks")
        _check_pow2(self.segment_bytes, "segment_bytes")
        if self.bank_width_bytes <= 0:
            raise ConfigurationError(
                f"bank_width_bytes must be positive, got {self.bank_width_bytes}"
            )
        for name in (
            "alu_cycles",
            "shared_cycles",
            "global_latency_cycles",
            "atomic_cycles",
            "cache_bytes",
            "cache_hit_cycles",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")
        if self.sanitize_mode not in ("raise", "report"):
            raise ConfigurationError(
                f"sanitize_mode must be 'raise' or 'report', got {self.sanitize_mode!r}"
            )
