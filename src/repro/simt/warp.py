"""The warp execution context - what a warp-centric kernel programs against.

A kernel is a Python function (usually a generator, so it can ``yield``
barriers) receiving a :class:`WarpContext` ``ctx``.  "Registers" are NumPy
vectors with one element per lane; control flow is expressed with boolean
*masks* (predication), exactly like divergence-free CUDA warp code:

.. code-block:: python

    def kernel(ctx, points, out):
        lane = ctx.lane_id                      # vector 0..31
        row = ctx.warp_id_global                # scalar: one warp per row
        mask = lane < n_cols                    # predicate off excess lanes
        vals = ctx.load(points, row * stride + lane, mask)
        total = ctx.reduce_sum(vals, mask)      # warp reduction
        ctx.store(out, np.full(ctx.warp_size, row), total, ctx.lane_id == 0)

All intrinsics charge ALU cycles to the device metrics; memory operations
charge transactions (see :mod:`repro.simt.memory`).  Divergence is made
explicit: :meth:`WarpContext.branch` records when the warp disagrees on a
predicate.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.errors import SimtError
from repro.simt.atomics import AtomicUnit
from repro.simt.memory import GlobalBuffer
from repro.simt.shared import SharedMemory

if TYPE_CHECKING:  # pragma: no cover
    from repro.simt.device import Device


class Barrier:
    """Token yielded by kernels at a block-wide synchronisation point."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "Barrier()"


BARRIER = Barrier()


class WarpContext:
    """Execution context of one warp within one block of a kernel launch."""

    def __init__(
        self,
        device: "Device",
        shared: SharedMemory,
        block_id: int,
        warp_id: int,
        block_warps: int,
        grid_blocks: int,
    ) -> None:
        self._device = device
        self._config = device.config
        self._metrics = device.metrics
        self._shared = shared
        self._atomics = AtomicUnit(device.metrics, ctx=self)
        #: wksan sanitizer of the owning device (``None`` when disabled)
        self.sanitizer = getattr(device, "sanitizer", None)
        #: spinlocks currently held by this warp: ``(buffer id, index)`` keys;
        #: tagged onto sanitized accesses so lock-protected critical sections
        #: order against each other
        self._held_locks: set[tuple[int, int]] = set()
        self.block_id = block_id
        #: index of this warp within its block
        self.warp_id = warp_id
        self.block_warps = block_warps
        self.grid_blocks = grid_blocks
        self.warp_size = device.config.warp_size
        #: lane index vector ``[0, 1, ..., warp_size-1]``
        self.lane_id = np.arange(self.warp_size, dtype=np.int64)
        self.full_mask = np.ones(self.warp_size, dtype=bool)

    # -- identity ------------------------------------------------------------

    @property
    def warp_id_global(self) -> int:
        """Flat warp index across the whole grid."""
        return self.block_id * self.block_warps + self.warp_id

    @property
    def grid_warps(self) -> int:
        """Total warps in the launch."""
        return self.grid_blocks * self.block_warps

    # -- bookkeeping helpers ---------------------------------------------------

    def alu(self, n: int = 1) -> None:
        """Charge ``n`` warp-wide ALU operations to the cost model.

        Kernels call this to account for arithmetic done in NumPy
        expressions on register vectors (the simulator cannot see through
        NumPy, so arithmetic is charged by explicit hint).
        """
        self._metrics.alu_ops += int(n)

    def branch(self, predicate: np.ndarray | bool, mask: np.ndarray | None = None) -> bool:
        """Evaluate a warp-level branch condition.

        Returns ``True`` if *any* active lane takes the branch, and records a
        divergent branch when active lanes disagree - the quantity reported
        in experiment F6.
        """
        mask = self.full_mask if mask is None else mask
        pred = np.broadcast_to(np.asarray(predicate, dtype=bool), (self.warp_size,))
        active = pred[mask]
        self._metrics.alu_ops += 1
        if active.size == 0:
            return False
        taken = bool(active.any())
        if taken and not bool(active.all()):
            self._metrics.divergent_branches += 1
        return taken

    def barrier(self) -> Barrier:
        """Block-wide barrier token: use as ``yield ctx.barrier()``."""
        return BARRIER

    # -- global memory --------------------------------------------------------

    def load(
        self, buf: GlobalBuffer, idx: np.ndarray, mask: np.ndarray | None = None
    ) -> np.ndarray:
        """Warp-wide gather from global memory (coalescing-accounted)."""
        mask = self.full_mask if mask is None else np.asarray(mask, dtype=bool)
        idx = self._as_lanes(idx)
        return buf.gather(idx, mask, self._config, self._metrics,
                          cache=self._device.cache, ctx=self)

    def store(
        self,
        buf: GlobalBuffer,
        idx: np.ndarray,
        values: np.ndarray,
        mask: np.ndarray | None = None,
    ) -> None:
        """Warp-wide scatter to global memory (coalescing-accounted)."""
        mask = self.full_mask if mask is None else np.asarray(mask, dtype=bool)
        idx = self._as_lanes(idx)
        buf.scatter(idx, values, mask, self._config, self._metrics,
                    cache=self._device.cache, ctx=self)

    # -- atomics ---------------------------------------------------------------

    def atomic_add(self, buf, idx, values, mask=None) -> np.ndarray:
        mask = self.full_mask if mask is None else np.asarray(mask, dtype=bool)
        return self._atomics.add(buf, self._as_lanes(idx), values, mask)

    def atomic_max(self, buf, idx, values, mask=None) -> np.ndarray:
        mask = self.full_mask if mask is None else np.asarray(mask, dtype=bool)
        return self._atomics.max(buf, self._as_lanes(idx), values, mask)

    def atomic_min(self, buf, idx, values, mask=None) -> np.ndarray:
        mask = self.full_mask if mask is None else np.asarray(mask, dtype=bool)
        return self._atomics.min(buf, self._as_lanes(idx), values, mask)

    def atomic_exch(self, buf, idx, values, mask=None) -> np.ndarray:
        mask = self.full_mask if mask is None else np.asarray(mask, dtype=bool)
        return self._atomics.exch(buf, self._as_lanes(idx), values, mask)

    def atomic_cas(self, buf, idx, compare, values, mask=None) -> np.ndarray:
        mask = self.full_mask if mask is None else np.asarray(mask, dtype=bool)
        return self._atomics.cas(buf, self._as_lanes(idx), compare, values, mask)

    # -- spinlock protocol ------------------------------------------------------

    def lock_acquire(self, lock_buf: GlobalBuffer, index: int,
                     owner_lane: int = 0) -> bool:
        """One ``atomicExch(lock[index], 1)`` attempt to take a spinlock.

        Returns True when the lock was free (the word held 0).  The warp
        then *holds* the lock: the wksan sanitizer tags every subsequent
        access with it, so two critical sections on the same lock word are
        mutually ordered.  Kernels must pair this with :meth:`lock_release`.
        """
        old = self.atomic_exch(
            lock_buf, np.full(self.warp_size, int(index)), 1,
            self.lane_id == owner_lane,
        )
        acquired = int(old[owner_lane]) == 0
        if acquired:
            self._held_locks.add((id(lock_buf), int(index)))
        return acquired

    def lock_release(self, lock_buf: GlobalBuffer, index: int,
                     owner_lane: int = 0) -> None:
        """Release a spinlock taken with :meth:`lock_acquire`.

        The release is itself an ``atomicExch(lock[index], 0)`` - a plain
        store would race with another warp's acquire exchange (and real
        devices need the implied fence); the cost model already charges the
        baseline discipline for an atomic release
        (:mod:`repro.bench.costmodel`).  Releasing a lock the warp does not
        hold is a discipline violation reported by the sanitizer.
        """
        key = (id(lock_buf), int(index))
        if key in self._held_locks:
            # drop the tag first so the release exchange itself is ordered by
            # atomicity, not by the (ending) critical section
            self._held_locks.discard(key)
        elif self.sanitizer is not None:
            self.sanitizer.bad_release(self, f"{lock_buf.name}[{int(index)}]")
        self.atomic_exch(
            lock_buf, np.full(self.warp_size, int(index)), 0,
            self.lane_id == owner_lane,
        )

    # -- shared memory ----------------------------------------------------------

    def shared(self, name: str, shape, dtype) -> np.ndarray:
        """Declare / retrieve a named block-shared region (CUDA ``__shared__``)."""
        return self._shared.allocate(name, shape, dtype)

    def shared_load(self, region: np.ndarray, idx, mask=None) -> np.ndarray:
        mask = self.full_mask if mask is None else np.asarray(mask, dtype=bool)
        return self._shared.load(region, self._as_lanes(idx), mask, ctx=self)

    def shared_store(self, region: np.ndarray, idx, values, mask=None) -> None:
        mask = self.full_mask if mask is None else np.asarray(mask, dtype=bool)
        self._shared.store(region, self._as_lanes(idx), values, mask, ctx=self)

    # -- warp shuffle / vote intrinsics -------------------------------------------

    def shfl(self, values: np.ndarray, src_lane) -> np.ndarray:
        """``__shfl_sync``: every lane reads ``values`` from ``src_lane``.

        ``src_lane`` may be a scalar (broadcast) or a per-lane vector.
        """
        self._metrics.alu_ops += 1
        src = np.broadcast_to(np.asarray(src_lane, dtype=np.int64), (self.warp_size,))
        src = np.clip(src, 0, self.warp_size - 1)
        return np.asarray(values)[src]

    def shfl_down(self, values: np.ndarray, delta: int) -> np.ndarray:
        """``__shfl_down_sync``: lane ``i`` reads lane ``i + delta``.

        Lanes whose source exceeds the warp keep their own value, matching
        hardware behaviour.
        """
        self._metrics.alu_ops += 1
        src = self.lane_id + int(delta)
        vals = np.asarray(values)
        out = vals.copy()
        ok = src < self.warp_size
        out[ok] = vals[src[ok]]
        return out

    def shfl_xor(self, values: np.ndarray, lane_mask: int) -> np.ndarray:
        """``__shfl_xor_sync``: butterfly exchange pattern."""
        self._metrics.alu_ops += 1
        src = self.lane_id ^ int(lane_mask)
        return np.asarray(values)[src]

    def ballot(self, predicate: np.ndarray, mask: np.ndarray | None = None) -> int:
        """``__ballot_sync``: bitmask of lanes whose predicate holds."""
        mask = self.full_mask if mask is None else np.asarray(mask, dtype=bool)
        self._metrics.alu_ops += 1
        pred = np.broadcast_to(np.asarray(predicate, dtype=bool), (self.warp_size,))
        bits = np.flatnonzero(pred & mask)
        return int(sum(1 << int(b) for b in bits))

    def any(self, predicate, mask=None) -> bool:
        """``__any_sync``."""
        return self.ballot(predicate, mask) != 0

    def all(self, predicate, mask=None) -> bool:
        """``__all_sync`` over the active lanes."""
        mask = self.full_mask if mask is None else np.asarray(mask, dtype=bool)
        self._metrics.alu_ops += 1
        pred = np.broadcast_to(np.asarray(predicate, dtype=bool), (self.warp_size,))
        return bool(pred[mask].all()) if mask.any() else True

    # -- warp-level collectives (log2(W) shuffle steps, costed accordingly) ----

    def reduce_sum(self, values: np.ndarray, mask: np.ndarray | None = None) -> float:
        """Warp tree-reduction sum over active lanes (identity 0)."""
        return self._reduce(values, mask, "sum")

    def reduce_min(self, values: np.ndarray, mask: np.ndarray | None = None) -> float:
        """Warp tree-reduction min over active lanes (identity +inf)."""
        return self._reduce(values, mask, "min")

    def reduce_max(self, values: np.ndarray, mask: np.ndarray | None = None) -> float:
        """Warp tree-reduction max over active lanes (identity -inf)."""
        return self._reduce(values, mask, "max")

    def _reduce(self, values, mask, op: str):
        mask = self.full_mask if mask is None else np.asarray(mask, dtype=bool)
        vals = np.asarray(values)
        # a hardware warp reduction is log2(warp_size) shuffle+op steps
        self._metrics.alu_ops += 2 * int(np.log2(self.warp_size))
        active = vals[mask]
        if active.size == 0:
            if op == "sum":
                return vals.dtype.type(0)
            return vals.dtype.type(np.inf if op == "min" else -np.inf)
        if op == "sum":
            return active.sum(dtype=np.float64).astype(vals.dtype) if vals.dtype.kind == "f" else active.sum()
        return active.min() if op == "min" else active.max()

    def argmax_lane(
        self, values: np.ndarray, mask: np.ndarray | None = None
    ) -> tuple[float, int]:
        """Warp arg-max: returns ``(max_value, winning_lane)``.

        Ties resolve to the lowest lane.  Costed like a reduction.  Inactive
        warps (empty mask) return ``(-inf, -1)``.
        """
        mask = self.full_mask if mask is None else np.asarray(mask, dtype=bool)
        self._metrics.alu_ops += 2 * int(np.log2(self.warp_size))
        vals = np.asarray(values, dtype=np.float64).copy()
        vals[~mask] = -np.inf
        if not mask.any():
            return float("-inf"), -1
        lane = int(np.argmax(vals))
        return float(vals[lane]), lane

    def argmin_lane(
        self, values: np.ndarray, mask: np.ndarray | None = None
    ) -> tuple[float, int]:
        """Warp arg-min: returns ``(min_value, winning_lane)``."""
        mask = self.full_mask if mask is None else np.asarray(mask, dtype=bool)
        self._metrics.alu_ops += 2 * int(np.log2(self.warp_size))
        vals = np.asarray(values, dtype=np.float64).copy()
        vals[~mask] = np.inf
        if not mask.any():
            return float("inf"), -1
        lane = int(np.argmin(vals))
        return float(vals[lane]), lane

    def exclusive_scan_sum(self, values: np.ndarray, mask: np.ndarray | None = None) -> np.ndarray:
        """Warp exclusive prefix sum over active lanes (inactive lanes -> 0)."""
        mask = self.full_mask if mask is None else np.asarray(mask, dtype=bool)
        self._metrics.alu_ops += 2 * int(np.log2(self.warp_size))
        vals = np.where(mask, np.asarray(values), 0)
        out = np.cumsum(vals) - vals
        return out

    # -- internals -----------------------------------------------------------

    def _as_lanes(self, idx) -> np.ndarray:
        arr = np.asarray(idx, dtype=np.int64)
        if arr.ndim == 0:
            arr = np.full(self.warp_size, arr, dtype=np.int64)
        if arr.shape != (self.warp_size,):
            raise SimtError(
                f"per-lane index vector must have shape ({self.warp_size},), "
                f"got {arr.shape}"
            )
        return arr
