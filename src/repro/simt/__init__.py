"""Warp-level SIMT GPU simulator.

This package is the substrate that replaces the CUDA GPU of the paper.  It
executes *warp-centric* kernels - Python generator functions written in the
lockstep, mask-predicated style of CUDA warp programming - and accounts for
the microarchitectural quantities that determine real GPU performance:

* **global-memory transactions** under the coalescing rules of a 128-byte
  segment memory system (:mod:`repro.simt.memory`),
* **shared-memory bank conflicts** (:mod:`repro.simt.shared`),
* **atomic-operation contention** (:mod:`repro.simt.atomics`),
* **branch divergence** via explicit predication masks
  (:mod:`repro.simt.warp`),
* a simple **cycle cost model** combining them (:mod:`repro.simt.metrics`),
  and
* an optional **race detector / memory sanitizer** ("wksan",
  :mod:`repro.simt.sanitizer`) that checks every sanitized access against a
  happens-before model of warps, barriers, locks and atomics - enable with
  ``DeviceConfig(sanitize=True)`` or ``WKNN_SANITIZE=1``.

A kernel sees a :class:`~repro.simt.warp.WarpContext` whose register values
are NumPy vectors of ``warp_size`` lanes.  Blocks are collections of warps
that share a :class:`~repro.simt.shared.SharedMemory` and synchronise with
``yield ctx.barrier()``; the :mod:`repro.simt.scheduler` interleaves warp
coroutines exactly like a (single-SM, round-robin) hardware scheduler.

The simulator trades speed for fidelity - it is used for correctness tests
of the warp-centric algorithms and for the microarchitecture-metric
experiments (DESIGN.md experiment F6), while the :mod:`repro.kernels`
package provides vectorised equivalents for large runs.
"""

from repro.simt.config import DeviceConfig
from repro.simt.device import Device
from repro.simt.metrics import KernelMetrics
from repro.simt.memory import GlobalBuffer
from repro.simt.sanitizer import Finding, Sanitizer, SanitizerReport
from repro.simt.warp import WarpContext

__all__ = [
    "Device",
    "DeviceConfig",
    "Finding",
    "GlobalBuffer",
    "KernelMetrics",
    "Sanitizer",
    "SanitizerReport",
    "WarpContext",
]
