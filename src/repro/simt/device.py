"""The simulated device facade: memory management + kernel launches."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.simt.config import DeviceConfig
from repro.simt.memory import GlobalBuffer
from repro.simt.metrics import KernelMetrics
from repro.simt import scheduler


class Device:
    """A simulated SIMT device.

    Owns the global-memory buffers, the metric counters and the launch
    machinery.  Typical usage::

        dev = Device()
        pts = dev.to_device(points, "points")
        out = dev.empty((n, k), np.float32, "out")
        dev.launch(my_kernel, grid_blocks=n_warps_needed, block_warps=1,
                   args=(pts, out))
        result = out.to_host()
        cycles = dev.metrics.estimated_cycles(dev.config)

    The device is deterministic: identical launches produce identical
    buffers and identical metrics.
    """

    def __init__(self, config: DeviceConfig | None = None, obs=None) -> None:
        self.config = config or DeviceConfig()
        self.metrics = KernelMetrics()
        #: optional :class:`~repro.obs.Observability`; when attached, every
        #: launch emits kernel-dispatch hooks and ``dispatch/simt/`` metrics
        self.obs = obs
        self._buffers: list[GlobalBuffer] = []
        self._next_base = 0
        from repro.simt.cache import make_device_cache

        #: device-level cache model (None when config.cache_bytes == 0)
        self.cache = make_device_cache(self.config)
        #: wksan race detector / memory sanitizer (None when disabled); see
        #: :mod:`repro.simt.sanitizer` and ``DeviceConfig.sanitize``
        self.sanitizer = None
        if self.config.sanitize:
            from repro.simt.sanitizer import Sanitizer

            self.sanitizer = Sanitizer(mode=self.config.sanitize_mode)
            self.sanitizer.metrics = self.metrics
        #: per-block cycle estimates of the most recent launch (set by the
        #: scheduler; input to the multi-SM occupancy estimate)
        self.last_launch_block_cycles: list[int] = []

    # -- memory management ---------------------------------------------------

    def to_device(
        self, array: np.ndarray, name: str = "buffer", const: bool = False
    ) -> GlobalBuffer:
        """Copy a host array into a new device buffer.

        Buffers receive disjoint, segment-aligned base addresses so the
        cache model sees a realistic unified address space.  ``const=True``
        marks the buffer read-only for the sanitizer: device writes are
        flagged (``const-write``) and reads skip conflict tracking, the
        fast path for kernel inputs such as the point matrix.
        """
        buf = GlobalBuffer(array, name=name, base_addr=self._next_base)
        seg = self.config.segment_bytes
        self._next_base += ((buf.nbytes + seg - 1) // seg) * seg
        self._buffers.append(buf)
        if self.sanitizer is not None:
            self.sanitizer.register_global(buf, initialized=True, const=const)
        return buf

    def empty(self, shape, dtype, name: str = "buffer", fill=None) -> GlobalBuffer:
        """Allocate a device buffer, zero-filled (or ``fill``-filled).

        Zero-filling models an explicit ``cudaMemset`` and counts as
        initialization; use :meth:`malloc` for undefined-content semantics.
        """
        arr = np.zeros(shape, dtype=dtype)
        if fill is not None:
            arr[...] = fill
        return self.to_device(arr, name=name)

    def malloc(self, shape, dtype, name: str = "buffer") -> GlobalBuffer:
        """Allocate a device buffer with *undefined* contents (``cudaMalloc``).

        The storage is zero-filled for determinism, but the sanitizer treats
        every word as never-written: reading one before a device-side store
        is an ``uninitialized-read`` finding.
        """
        buf = GlobalBuffer(np.zeros(shape, dtype=dtype), name=name,
                           base_addr=self._next_base)
        seg = self.config.segment_bytes
        self._next_base += ((buf.nbytes + seg - 1) // seg) * seg
        self._buffers.append(buf)
        if self.sanitizer is not None:
            self.sanitizer.register_global(buf, initialized=False)
        return buf

    @property
    def allocated_bytes(self) -> int:
        """Total bytes across live allocations (simple accounting)."""
        return sum(b.nbytes for b in self._buffers)

    # -- execution -------------------------------------------------------------

    def launch(
        self,
        kernel: Callable,
        grid_blocks: int,
        block_warps: int = 1,
        args: tuple = (),
    ) -> None:
        """Run ``kernel`` over a ``grid_blocks`` x ``block_warps`` geometry.

        See :mod:`repro.simt.scheduler` for the execution model.
        """
        scheduler.launch(self, kernel, grid_blocks, block_warps, args)

    def parallel_cycles(self, n_sms: int) -> int:
        """Occupancy estimate: wall-cycles of the last launch on ``n_sms``
        streaming multiprocessors.

        Blocks are independent, so hardware distributes them across SMs;
        the launch finishes when the busiest SM drains.  Uses the greedy
        longest-processing-time assignment (a 4/3-approximation of the
        optimal makespan, and close to how hardware work distribution
        behaves for uniform blocks).
        """
        if n_sms < 1:
            raise ValueError(f"n_sms must be >= 1, got {n_sms}")
        blocks = sorted(self.last_launch_block_cycles, reverse=True)
        if not blocks:
            return 0
        loads = [0] * min(n_sms, len(blocks))
        for cycles in blocks:
            idx = loads.index(min(loads))
            loads[idx] += cycles
        return max(loads)

    def reset_metrics(self) -> KernelMetrics:
        """Zero the counters, returning a copy of the pre-reset values."""
        snapshot = self.metrics.copy()
        self.metrics.reset()
        return snapshot
