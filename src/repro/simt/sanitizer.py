"""wksan - SIMT race detector and memory sanitizer for the simulator.

The paper's contribution is three *synchronization disciplines* for
maintaining k-NN lists in global memory (per-point lock, lock-free 64-bit
atomics, tiled privatization).  The simulator executes warps cooperatively,
so a kernel with a data race still produces deterministic NumPy results -
it would pass every recall test while the equivalent CUDA corrupts memory.
This module makes the discipline argument mechanically checkable: every
sanitized access is recorded as an ``(address, lane, warp, op, sync-epoch)``
event and checked against a happens-before model of the device.

Detector classes
----------------
``write-write`` / ``read-write``
    Conflicting accesses to the same word from different warps (or blocks)
    with no ordering synchronization between them.
``duplicate-scatter``
    Several active lanes of one warp scatter to the same address in a
    single store.  NumPy silently applies last-write-wins; CUDA leaves the
    surviving lane unspecified.
``uninitialized-read``
    A read (or atomic RMW) of a device word never written since its
    undefined allocation (:meth:`repro.simt.device.Device.malloc`, or any
    shared-memory word - CUDA ``__shared__`` is never zero-filled).
``out-of-bounds``
    A sanitized access outside the buffer/region (always also raises
    :class:`~repro.errors.MemoryAccessError` from the access itself).
``const-write``
    A store or atomic to a buffer registered read-only
    (``Device.to_device(..., const=True)``).
``lock-discipline``
    Releasing a lock the warp does not hold, or exiting the kernel while
    still holding one.

Happens-before model
--------------------
Two accesses to the same word are *ordered* (cannot race) iff any of:

* same block **and** same warp (program order);
* both are atomic RMW operations (hardware serialises them);
* one is an atomic RMW and the other a *read* - a single aligned word
  cannot tear, and the disciplines' lock-free scans rely on exactly this;
* both were issued holding a common lock
  (:meth:`~repro.simt.warp.WarpContext.lock_acquire`);
* same block and different sync epoch (a ``yield ctx.barrier()`` -
  ``__syncthreads()`` - separates them).

Everything else - in particular a plain write against any access from
another warp or block - is an unordered conflict.  Kernel launches
serialise on the stream, so the conflict state resets per launch;
initialization shadow state persists for the life of the device.

Modes
-----
``raise`` (default): the first finding raises :class:`~repro.errors.RaceError`
with both access sites named.  ``report``: findings accumulate on
:attr:`Sanitizer.findings` (deduplicated per launch), are counted into
``KernelMetrics.sanitizer_findings``, and - when the device has an
observability session attached - emitted as ``sanitizer/<kind>`` counters
plus :data:`repro.obs.hooks.Events.SANITIZER_FINDING` hook events.

Enable with ``DeviceConfig(sanitize=True)``, the ``WKNN_SANITIZE=1`` (or
``=report``) environment switch, or ``python -m repro build --backend simt
--sanitize``.
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.errors import RaceError

if TYPE_CHECKING:  # pragma: no cover
    from repro.simt.memory import GlobalBuffer
    from repro.simt.metrics import KernelMetrics
    from repro.simt.warp import WarpContext

#: finding kinds, in rough order of severity
KINDS = (
    "write-write",
    "read-write",
    "duplicate-scatter",
    "uninitialized-read",
    "out-of-bounds",
    "const-write",
    "lock-discipline",
)

_FALSE_VALUES = {"", "0", "false", "no", "off"}


def env_mode() -> str | None:
    """Sanitizer mode requested by ``WKNN_SANITIZE`` (``None`` = disabled).

    ``1``/``true``/``yes``/``on``/``raise`` select ``raise`` mode;
    ``report`` selects report-only mode.
    """
    val = os.environ.get("WKNN_SANITIZE", "").strip().lower()
    if val in _FALSE_VALUES:
        return None
    return "report" if val == "report" else "raise"


# --------------------------------------------------------------------------
# access events and findings
# --------------------------------------------------------------------------

#: files whose frames are skipped when locating the kernel-source access site
_SKIP_FILES = frozenset({"sanitizer.py", "memory.py", "shared.py",
                         "atomics.py", "warp.py"})


def _caller_site() -> str:
    """``file.py:line in func`` of the nearest frame outside the substrate."""
    f = sys._getframe(1)
    while f is not None:
        name = os.path.basename(f.f_code.co_filename)
        if name not in _SKIP_FILES:
            return f"{name}:{f.f_lineno} in {f.f_code.co_name}"
        f = f.f_back
    return "<unknown site>"  # pragma: no cover - a frame always exists


@dataclass(frozen=True)
class AccessRecord:
    """One warp-wide sanitized access (one event per touched address)."""

    block: int
    warp: int
    #: barrier count of the block when the access happened
    epoch: int
    #: "read" | "write" | "atomic"
    op: str
    #: locks held by the issuing warp (keys from WarpContext.lock_acquire)
    locks: frozenset
    #: human-readable source site: "file.py:line in func (block b, warp w, ...)"
    site: str

    @property
    def atomic(self) -> bool:
        return self.op == "atomic"

    def key(self) -> tuple:
        """Equivalence key for read deduplication (site kept from first)."""
        return (self.block, self.warp, self.epoch, self.op, self.locks)

    def describe(self) -> str:
        held = f", holding {sorted(map(str, self.locks))}" if self.locks else ""
        return (f"{self.op} at {self.site} "
                f"[block {self.block}, warp {self.warp}, epoch {self.epoch}{held}]")


def _ordered(a: AccessRecord, b: AccessRecord) -> bool:
    """True when the happens-before model orders the two accesses."""
    if a.block == b.block and a.warp == b.warp:
        return True  # program order
    if a.atomic and b.atomic:
        return True  # hardware serialises atomics
    if (a.atomic and b.op == "read") or (b.atomic and a.op == "read"):
        return True  # aligned single-word RMW cannot tear under a plain load
    if a.locks and b.locks and (a.locks & b.locks):
        return True  # common critical section
    if a.block == b.block and a.epoch != b.epoch:
        return True  # separated by a block barrier
    return False


@dataclass(frozen=True)
class Finding:
    """One sanitizer finding (structured; ``site_b`` set for conflicts)."""

    kind: str
    buffer: str
    address: int
    message: str
    site_a: str = ""
    site_b: str | None = None

    def as_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "kind": self.kind, "buffer": self.buffer,
            "address": self.address, "message": self.message,
            "site_a": self.site_a,
        }
        if self.site_b is not None:
            out["site_b"] = self.site_b
        return out

    def __str__(self) -> str:
        return self.message


@dataclass(frozen=True)
class SanitizerReport:
    """Immutable snapshot of a sanitizer's accumulated findings."""

    findings: tuple[Finding, ...] = ()

    @property
    def clean(self) -> bool:
        return not self.findings

    def by_kind(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for f in self.findings:
            counts[f.kind] = counts.get(f.kind, 0) + 1
        return counts

    def as_dict(self) -> dict[str, Any]:
        return {
            "findings": len(self.findings),
            "by_kind": self.by_kind(),
            "messages": [f.message for f in self.findings[:20]],
        }

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.clean:
            return "SanitizerReport(clean)"
        kinds = ", ".join(f"{k}={v}" for k, v in sorted(self.by_kind().items()))
        return f"SanitizerReport({len(self.findings)} findings: {kinds})"


class _AddrState:
    """Per-word conflict state: last write + reads since that write."""

    __slots__ = ("write", "reads")

    def __init__(self) -> None:
        self.write: AccessRecord | None = None
        self.reads: dict[tuple, AccessRecord] = {}


# --------------------------------------------------------------------------
# the sanitizer
# --------------------------------------------------------------------------


class Sanitizer:
    """Shadow-memory instrumentation for one simulated device.

    Owned by :class:`repro.simt.device.Device` (``device.sanitizer``; ``None``
    when disabled).  The warp context routes every global gather/scatter,
    atomic and shared load/store through :meth:`global_access` /
    :meth:`shared_access`; the scheduler reports launch, barrier and
    block-completion events so the happens-before model tracks sync epochs.
    """

    def __init__(self, mode: str = "raise") -> None:
        if mode not in ("raise", "report"):
            raise ValueError(f"sanitizer mode must be 'raise'|'report', got {mode!r}")
        self.mode = mode
        #: accumulated findings (all modes; ``raise`` stops at the first)
        self.findings: list[Finding] = []
        #: device metric counters (set by Device; sanitizer_findings field)
        self.metrics: "KernelMetrics | None" = None
        #: observability session of the current launch (set by the scheduler)
        self.obs = None
        self._kernel = "<host>"
        # persistent shadow state -------------------------------------------------
        self._bufrefs: dict[int, "GlobalBuffer"] = {}
        self._init_global: dict[int, np.ndarray] = {}
        self._const: set[int] = set()
        # per-launch state --------------------------------------------------------
        self._state: dict[tuple, _AddrState] = {}
        self._shared_written: dict[tuple, np.ndarray] = {}
        self._epochs: dict[int, int] = {}
        self._seen: set[tuple] = set()

    # -- registration ------------------------------------------------------------

    def register_global(self, buf: "GlobalBuffer", initialized: bool = True,
                        const: bool = False) -> None:
        """Track a global buffer's shadow state.

        ``initialized=False`` models a ``cudaMalloc``-style allocation whose
        contents are undefined until written; ``const=True`` marks the
        buffer read-only (writes are flagged, reads skip conflict
        tracking - host-initialised inputs like the point matrix).
        """
        bid = id(buf)
        if bid in self._bufrefs:
            return
        self._bufrefs[bid] = buf  # strong ref: keeps id() stable
        self._init_global[bid] = np.full(buf.size, initialized, dtype=bool)
        if const:
            self._const.add(bid)

    # -- scheduler events --------------------------------------------------------

    def launch_begin(self, kernel: str, grid_blocks: int, block_warps: int,
                     obs=None) -> None:
        """Reset per-launch conflict state (launches serialise on the stream)."""
        self._kernel = kernel
        self.obs = obs
        self._state.clear()
        self._shared_written.clear()
        self._epochs.clear()
        self._seen.clear()

    def barrier(self, block_id: int) -> None:
        """A block barrier released: bump the block's sync epoch."""
        self._epochs[block_id] = self._epochs.get(block_id, 0) + 1

    def block_end(self, contexts) -> None:
        """A block ran to completion: no warp may still hold a lock."""
        for ctx in contexts:
            held = getattr(ctx, "_held_locks", None)
            if held:
                names = sorted(str(k) for k in held)
                self._emit(Finding(
                    kind="lock-discipline", buffer="<locks>", address=-1,
                    message=(f"wksan [{self._kernel}]: block {ctx.block_id} "
                             f"warp {ctx.warp_id} exited the kernel still "
                             f"holding lock(s) {names}"),
                    site_a=f"kernel {self._kernel}",
                ))
                held.clear()

    def launch_end(self) -> SanitizerReport:
        """Finish the launch; returns the report accumulated so far."""
        self._kernel = "<host>"
        return self.report()

    # -- lock protocol -----------------------------------------------------------

    def bad_release(self, ctx: "WarpContext", lock_name: str) -> None:
        """Called by the warp context on release of a lock it does not hold."""
        self._emit(Finding(
            kind="lock-discipline", buffer="<locks>", address=-1,
            message=(f"wksan [{self._kernel}]: release of lock {lock_name} "
                     f"not held by block {ctx.block_id} warp {ctx.warp_id} "
                     f"at {_caller_site()}"),
            site_a=_caller_site(),
        ))

    # -- access recording --------------------------------------------------------

    def global_access(self, buf: "GlobalBuffer", idx: np.ndarray,
                      mask: np.ndarray, op: str, ctx: "WarpContext") -> None:
        """Record one warp-wide global-memory access (``op``: read/write/atomic)."""
        bid = id(buf)
        if bid not in self._bufrefs:
            # unknown origin (e.g. a bare GlobalBuffer in tests): assume the
            # host initialised it, track conflicts normally
            self.register_global(buf, initialized=True)
        lanes = np.flatnonzero(mask)
        if lanes.size == 0:
            return
        addrs = np.asarray(idx)[lanes]
        site = self._site(ctx, lanes)
        bad = (addrs < 0) | (addrs >= buf.size)
        if bad.any():
            off = addrs[bad]
            self._emit(Finding(
                kind="out-of-bounds", buffer=buf.name, address=int(off[0]),
                message=(f"wksan [{self._kernel}]: out-of-bounds {op} of "
                         f"{buf.name!r} (size {buf.size}) at addresses "
                         f"{off[:4].tolist()} from {site}"),
                site_a=site,
            ))
            return  # the access itself raises MemoryAccessError next
        if bid in self._const and op != "read":
            self._emit(Finding(
                kind="const-write", buffer=buf.name, address=int(addrs[0]),
                message=(f"wksan [{self._kernel}]: {op} to read-only buffer "
                         f"{buf.name!r} from {site}"),
                site_a=site,
            ))
        init = self._init_global[bid]
        self._check_init(init, addrs, buf.name, op, site)
        if op == "write":
            self._check_duplicates(addrs, lanes, buf.name, site)
        if bid in self._const:
            return  # no writes possible: reads cannot conflict
        self._track(("g", bid), buf.name, addrs, op, ctx, site)

    def shared_access(self, block_id: int, name: str, size: int,
                      idx: np.ndarray, mask: np.ndarray, op: str,
                      ctx: "WarpContext") -> None:
        """Record one warp-wide shared-memory access within ``block_id``."""
        lanes = np.flatnonzero(mask)
        if lanes.size == 0:
            return
        addrs = np.asarray(idx)[lanes]
        site = self._site(ctx, lanes)
        label = f"shared:{name}"
        bad = (addrs < 0) | (addrs >= size)
        if bad.any():
            self._emit(Finding(
                kind="out-of-bounds", buffer=label, address=int(addrs[bad][0]),
                message=(f"wksan [{self._kernel}]: out-of-bounds {op} of "
                         f"shared region {name!r} (size {size}) from {site}"),
                site_a=site,
            ))
            return
        written = self._shared_written.get((block_id, name))
        if written is None:
            # CUDA __shared__ is uninitialized until some warp stores to it
            written = np.zeros(size, dtype=bool)
            self._shared_written[(block_id, name)] = written
        self._check_init(written, addrs, label, op, site)
        if op == "write":
            self._check_duplicates(addrs, lanes, label, site)
        self._track(("s", block_id, name), label, addrs, op, ctx, site)

    # -- internals ---------------------------------------------------------------

    def _site(self, ctx: "WarpContext", lanes: np.ndarray) -> str:
        shown = lanes[:6].tolist() + (["..."] if lanes.size > 6 else [])
        return (f"{_caller_site()} (block {ctx.block_id}, warp {ctx.warp_id}, "
                f"lanes {shown})")

    def _check_init(self, init: np.ndarray, addrs: np.ndarray, bufname: str,
                    op: str, site: str) -> None:
        """Uninitialized-read check; writes (incl. atomic RMW) initialise."""
        if op in ("read", "atomic"):
            fresh = ~init[addrs]
            if fresh.any():
                first = addrs[fresh]
                self._emit(Finding(
                    kind="uninitialized-read", buffer=bufname,
                    address=int(first[0]),
                    message=(f"wksan [{self._kernel}]: {op} of never-written "
                             f"{bufname!r} word(s) {first[:4].tolist()} "
                             f"from {site}"),
                    site_a=site,
                ))
        if op in ("write", "atomic"):
            init[addrs] = True

    def _check_duplicates(self, addrs: np.ndarray, lanes: np.ndarray,
                          bufname: str, site: str) -> None:
        uniq, counts = np.unique(addrs, return_counts=True)
        if (counts > 1).any():
            dup = int(uniq[counts > 1][0])
            dup_lanes = lanes[addrs == dup].tolist()
            self._emit(Finding(
                kind="duplicate-scatter", buffer=bufname, address=dup,
                message=(f"wksan [{self._kernel}]: lanes {dup_lanes} of one "
                         f"warp scatter to the same address {dup} of "
                         f"{bufname!r} (CUDA leaves the winner unspecified; "
                         f"NumPy silently keeps the highest lane) at {site}"),
                site_a=site,
            ))

    def _track(self, space: tuple, bufname: str, addrs: np.ndarray, op: str,
               ctx: "WarpContext", site: str) -> None:
        rec = AccessRecord(
            block=ctx.block_id, warp=ctx.warp_id,
            epoch=self._epochs.get(ctx.block_id, 0), op=op,
            locks=frozenset(getattr(ctx, "_held_locks", ())), site=site,
        )
        state = self._state
        for a in np.unique(addrs):
            key = (space, int(a))
            st = state.get(key)
            if st is None:
                st = _AddrState()
                state[key] = st
            if op == "read":
                if st.write is not None and not _ordered(st.write, rec):
                    self._conflict("read-write", bufname, int(a), st.write, rec)
                st.reads.setdefault(rec.key(), rec)
            else:
                if st.write is not None and not _ordered(st.write, rec):
                    self._conflict("write-write", bufname, int(a), st.write, rec)
                for r in st.reads.values():
                    if not _ordered(r, rec):
                        self._conflict("read-write", bufname, int(a), r, rec)
                st.write = rec
                st.reads.clear()

    def _conflict(self, kind: str, bufname: str, addr: int,
                  first: AccessRecord, second: AccessRecord) -> None:
        self._emit(Finding(
            kind=kind, buffer=bufname, address=addr,
            message=(f"wksan [{self._kernel}]: unordered {kind} conflict on "
                     f"{bufname!r}[{addr}]: {first.describe()} vs "
                     f"{second.describe()}"),
            site_a=first.site, site_b=second.site,
        ))

    def _emit(self, finding: Finding) -> None:
        dedupe = (finding.kind, finding.buffer, finding.address,
                  finding.site_a, finding.site_b)
        if dedupe in self._seen:
            return
        self._seen.add(dedupe)
        self.findings.append(finding)
        if self.metrics is not None:
            self.metrics.sanitizer_findings += 1
        if self.mode == "raise":
            raise RaceError(finding.message, finding=finding)
        obs = self.obs
        if obs is not None:
            from repro.obs.hooks import Events

            obs.metrics.counter(f"sanitizer/{finding.kind}").inc()
            obs.hooks.emit(Events.SANITIZER_FINDING, **finding.as_dict())

    # -- results -----------------------------------------------------------------

    def report(self) -> SanitizerReport:
        """Snapshot of all findings accumulated so far (device lifetime)."""
        return SanitizerReport(tuple(self.findings))
