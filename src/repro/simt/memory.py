"""Simulated global (device) memory with transaction-level coalescing.

Global memory is modelled as a set of :class:`GlobalBuffer` objects, each a
flat NumPy array with a fixed element type.  Warp-wide gathers and scatters
go through :meth:`GlobalBuffer.gather` / :meth:`GlobalBuffer.scatter`, which
compute how many ``segment_bytes``-sized transactions the access touches -
the quantity a real memory system serialises on and the reason coalesced
layouts matter on GPUs.

Multidimensional data is stored flattened; kernels address it with explicit
``row * stride + col`` arithmetic exactly as CUDA kernels do.  The
:meth:`GlobalBuffer.view2d` helper exposes the row stride for that purpose.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MemoryAccessError
from repro.simt.config import DeviceConfig
from repro.simt.metrics import KernelMetrics

_SUPPORTED_DTYPES = (
    np.dtype(np.float32),
    np.dtype(np.float64),
    np.dtype(np.int32),
    np.dtype(np.int64),
    np.dtype(np.uint32),
    np.dtype(np.uint64),
)


class GlobalBuffer:
    """A device-memory allocation.

    Parameters
    ----------
    data:
        The backing NumPy array.  It is stored flattened (C order); the
        original shape is remembered so :meth:`to_host` can restore it.
    name:
        Optional label used in error messages.

    Notes
    -----
    Buffers are created through :meth:`repro.simt.device.Device.to_device`
    or :meth:`repro.simt.device.Device.empty`; constructing one directly is
    fine for tests.
    """

    __slots__ = ("_flat", "_shape", "name", "base_addr")

    def __init__(self, data: np.ndarray, name: str = "buffer", base_addr: int = 0) -> None:
        arr = np.asarray(data)
        if arr.dtype not in _SUPPORTED_DTYPES:
            raise MemoryAccessError(
                f"unsupported device dtype {arr.dtype} for {name!r}; "
                f"supported: {[str(d) for d in _SUPPORTED_DTYPES]}"
            )
        self._shape = arr.shape
        self._flat = np.ascontiguousarray(arr).reshape(-1).copy()
        self.name = name
        #: device-address-space byte offset (set by Device; keeps distinct
        #: buffers in distinct cache segments)
        self.base_addr = int(base_addr)

    # -- host interface ----------------------------------------------------

    @property
    def dtype(self) -> np.dtype:
        return self._flat.dtype

    @property
    def size(self) -> int:
        """Number of elements."""
        return self._flat.shape[0]

    @property
    def nbytes(self) -> int:
        return self._flat.nbytes

    @property
    def shape(self) -> tuple[int, ...]:
        """Logical (host-side) shape this buffer was created with."""
        return self._shape

    def to_host(self) -> np.ndarray:
        """Copy the buffer back to the host in its logical shape."""
        return self._flat.copy().reshape(self._shape)

    def view2d(self) -> tuple[int, int]:
        """Return ``(rows, row_stride)`` for a buffer created from a matrix."""
        if len(self._shape) != 2:
            raise MemoryAccessError(
                f"{self.name!r} was created with shape {self._shape}, not 2-D"
            )
        return self._shape[0], self._shape[1]

    # -- raw access used by the warp context & atomics ---------------------

    @property
    def raw(self) -> np.ndarray:
        """The flat backing array (used by atomics; not a copy)."""
        return self._flat

    def _check_bounds(self, idx: np.ndarray, mask: np.ndarray) -> None:
        active = idx[mask]
        if active.size and (active.min() < 0 or active.max() >= self.size):
            bad = active[(active < 0) | (active >= self.size)]
            raise MemoryAccessError(
                f"out-of-bounds access to {self.name!r} (size {self.size}): "
                f"indices {bad[:8].tolist()}"
            )

    def segments(self, idx: np.ndarray, mask: np.ndarray, config: DeviceConfig) -> np.ndarray:
        """Distinct device-address-space segment ids touched by active lanes."""
        active = idx[mask]
        if active.size == 0:
            return np.empty(0, dtype=np.int64)
        itemsize = self._flat.itemsize
        addrs = self.base_addr + active.astype(np.int64) * itemsize
        return np.unique(addrs // config.segment_bytes)

    def transactions(self, idx: np.ndarray, mask: np.ndarray, config: DeviceConfig) -> int:
        """Number of ``segment_bytes`` segments touched by the active lanes."""
        return int(self.segments(idx, mask, config).size)

    def gather(
        self,
        idx: np.ndarray,
        mask: np.ndarray,
        config: DeviceConfig,
        metrics: KernelMetrics,
        cache=None,
        ctx=None,
    ) -> np.ndarray:
        """Warp-wide load: ``out[l] = buf[idx[l]]`` for active lanes.

        Inactive lanes read as zero.  Counts one load plus one transaction
        per distinct segment; when a device cache is supplied, transactions
        are classified into hits and misses.  When ``ctx`` (the issuing
        :class:`~repro.simt.warp.WarpContext`) carries a sanitizer, the
        access is recorded with it first.
        """
        if ctx is not None and ctx.sanitizer is not None:
            ctx.sanitizer.global_access(self, idx, mask, "read", ctx)
        self._check_bounds(idx, mask)
        out = np.zeros(idx.shape, dtype=self._flat.dtype)
        out[mask] = self._flat[idx[mask]]
        segs = self.segments(idx, mask, config)
        metrics.global_loads += 1
        metrics.global_load_transactions += int(segs.size)
        if cache is not None and segs.size:
            misses = cache.access(segs)
            metrics.global_cache_misses += misses
            metrics.global_cache_hits += int(segs.size) - misses
        metrics.global_bytes_read += int(np.count_nonzero(mask)) * self._flat.itemsize
        if not mask.all():
            metrics.predicated_ops += 1
        return out

    def scatter(
        self,
        idx: np.ndarray,
        values: np.ndarray,
        mask: np.ndarray,
        config: DeviceConfig,
        metrics: KernelMetrics,
        cache=None,
        ctx=None,
    ) -> None:
        """Warp-wide store: ``buf[idx[l]] = values[l]`` for active lanes.

        When several active lanes target the same address the *highest* lane
        wins, matching CUDA's unspecified-but-single-winner semantics in a
        deterministic way (the wksan sanitizer flags such duplicate-index
        scatters when enabled).  Stores are write-through: they allocate in
        the cache but always count a downstream transaction.
        """
        if ctx is not None and ctx.sanitizer is not None:
            ctx.sanitizer.global_access(self, idx, mask, "write", ctx)
        self._check_bounds(idx, mask)
        np_idx = idx[mask]
        np_val = np.asarray(values, dtype=self._flat.dtype)
        if np_val.ndim == 0:
            np_val = np.full(idx.shape, np_val, dtype=self._flat.dtype)
        self._flat[np_idx] = np_val[mask]
        segs = self.segments(idx, mask, config)
        metrics.global_stores += 1
        metrics.global_store_transactions += int(segs.size)
        if cache is not None and segs.size:
            cache.access(segs)  # write-allocate; cost counted as transaction
        metrics.global_bytes_written += int(np.count_nonzero(mask)) * self._flat.itemsize
        if not mask.all():
            metrics.predicated_ops += 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GlobalBuffer({self.name!r}, shape={self._shape}, dtype={self.dtype})"
