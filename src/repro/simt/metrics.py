"""Microarchitecture event counters and the cycle cost model.

A :class:`KernelMetrics` instance is owned by the :class:`repro.simt.device.Device`
and incremented by every simulated memory access, atomic, intrinsic and ALU
hint.  The counters are the simulator's *output*: experiment F6 (DESIGN.md)
reports them directly to explain why the atomic strategy wins at low
dimensionality and the tiled strategy at high dimensionality.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import TYPE_CHECKING

from repro.simt.config import DeviceConfig

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.metrics import MetricsRegistry

#: registry namespace the simulator counters emit under
METRICS_PREFIX = "simt/"


@dataclass
class KernelMetrics:
    """Counters accumulated over one or more kernel launches.

    All counts are warp-granularity events (one warp-wide load that touches
    three 128-byte segments counts as 1 ``global_loads`` and 3
    ``global_load_transactions``).
    """

    #: warp-wide ALU operations (explicit hints plus intrinsic costs)
    alu_ops: int = 0
    #: warp-wide global loads / stores issued
    global_loads: int = 0
    global_stores: int = 0
    #: 128-byte segments touched (the coalescing-sensitive quantity)
    global_load_transactions: int = 0
    global_store_transactions: int = 0
    #: load-transaction cache classification (hits + misses == load
    #: transactions when the device cache is enabled; both zero otherwise)
    global_cache_hits: int = 0
    global_cache_misses: int = 0
    #: bytes moved to/from global memory (active lanes only)
    global_bytes_read: int = 0
    global_bytes_written: int = 0
    #: shared-memory accesses and extra serialised passes from bank conflicts
    shared_accesses: int = 0
    shared_bank_conflicts: int = 0
    #: atomic operations (per active lane) and same-address serialisations
    atomic_ops: int = 0
    atomic_conflicts: int = 0
    #: warp-wide ops executed with a partially-active mask (predication /
    #: divergence proxy) and branches where the warp disagreed
    predicated_ops: int = 0
    divergent_branches: int = 0
    #: scheduler-level events
    barriers: int = 0
    warps_launched: int = 0
    blocks_launched: int = 0
    #: wksan sanitizer findings recorded (report mode; not charged in cycles)
    sanitizer_findings: int = 0

    def add(self, other: "KernelMetrics") -> "KernelMetrics":
        """Accumulate ``other`` into ``self`` (in place) and return ``self``."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self

    def copy(self) -> "KernelMetrics":
        return KernelMetrics(**{f.name: getattr(self, f.name) for f in fields(self)})

    def reset(self) -> None:
        for f in fields(self):
            setattr(self, f.name, 0)

    def estimated_cycles(self, config: DeviceConfig) -> int:
        """Combine the counters into a single cycle estimate.

        The model is intentionally simple and linear:

        * each ALU op costs ``alu_cycles``;
        * each global transaction costs ``global_latency_cycles`` (so poorly
          coalesced access patterns are charged per extra segment);
        * each shared access costs ``shared_cycles`` plus one extra
          ``shared_cycles`` per serialised bank-conflict pass;
        * each atomic costs ``atomic_cycles`` plus ``atomic_cycles`` per
          same-address conflict (hardware replays conflicting lanes).

        Barriers and launches are free: the simulator is single-SM and
        round-robin, so there is no occupancy model to charge them against.
        """
        c = config
        cycles = self.alu_ops * c.alu_cycles
        # loads: cache hits cost cache_hit_cycles, everything else DRAM
        load_misses = self.global_load_transactions - self.global_cache_hits
        cycles += self.global_cache_hits * c.cache_hit_cycles
        cycles += max(0, load_misses) * c.global_latency_cycles
        cycles += self.global_store_transactions * c.global_latency_cycles
        cycles += (self.shared_accesses + self.shared_bank_conflicts) * c.shared_cycles
        cycles += (self.atomic_ops + self.atomic_conflicts) * c.atomic_cycles
        return cycles

    def as_dict(self) -> dict[str, int]:
        """Return the counters as a plain dict (for tables and JSON records)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def emit(self, registry: "MetricsRegistry", prefix: str = METRICS_PREFIX) -> None:
        """Pour the current snapshot into an observability metrics registry.

        Each field becomes a counter increment named ``<prefix><field>``, so
        ``registry.section(prefix)`` reproduces :meth:`as_dict` exactly.
        """
        registry.absorb(self.as_dict(), prefix=prefix)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = [f"{k}={v}" for k, v in self.as_dict().items() if v]
        return "KernelMetrics(" + ", ".join(parts) + ")"
