"""Set-associative cache model for simulated global-memory traffic.

The event-level simulator counts *transactions* (distinct 128-byte
segments per warp access); this module adds the question "did that
transaction hit on-chip cache?".  A single device-level cache stands in
for the L1/L2 hierarchy: segment-granular lines, set-associative with LRU
replacement, shared by all accesses of a launch (so a leaf's points,
re-streamed by the direct distance schedule, hit once the leaf is
resident - the effect the analytic cost model approximates with a
working-set formula, here measured exactly).

Stores are write-through/write-allocate: they touch the cache like loads
(the line becomes resident) and always cost a transaction downstream, the
usual GPU behaviour for global stores.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.simt.config import DeviceConfig


class SegmentCache:
    """Set-associative, LRU, segment-granular cache.

    Parameters
    ----------
    capacity_bytes:
        Total capacity; lines are ``segment_bytes`` wide.
    segment_bytes:
        Line size (the global-memory transaction granularity).
    ways:
        Associativity.  ``capacity / segment_bytes`` must be divisible by
        ``ways``.

    Notes
    -----
    Addresses are *segment indices* (already divided by line size).
    Timestamps implement LRU via a monotone access counter.
    """

    def __init__(self, capacity_bytes: int, segment_bytes: int, ways: int = 8) -> None:
        if capacity_bytes <= 0 or segment_bytes <= 0 or ways <= 0:
            raise ConfigurationError("cache geometry must be positive")
        lines = capacity_bytes // segment_bytes
        if lines == 0 or lines % ways != 0:
            raise ConfigurationError(
                f"capacity {capacity_bytes}B / line {segment_bytes}B must be a "
                f"positive multiple of ways={ways}"
            )
        self.n_sets = lines // ways
        self.ways = ways
        #: resident segment id per (set, way); -1 = invalid
        self._tags = np.full((self.n_sets, ways), -1, dtype=np.int64)
        #: LRU timestamps per (set, way)
        self._stamps = np.zeros((self.n_sets, ways), dtype=np.int64)
        self._clock = 0
        self.hits = 0
        self.misses = 0

    def access(self, segments: np.ndarray) -> int:
        """Touch the given segment ids; returns how many *missed*.

        Duplicate segments within one call are deduplicated first (a warp
        only issues one transaction per distinct segment).
        """
        segs = np.unique(np.asarray(segments, dtype=np.int64))
        misses = 0
        for seg in segs:
            self._clock += 1
            s = int(seg) % self.n_sets
            row = self._tags[s]
            hit = np.flatnonzero(row == seg)
            if hit.size:
                self._stamps[s, hit[0]] = self._clock
                self.hits += 1
            else:
                victim = int(np.argmin(self._stamps[s]))
                self._tags[s, victim] = seg
                self._stamps[s, victim] = self._clock
                self.misses += 1
                misses += 1
        return misses

    def reset(self) -> None:
        self._tags.fill(-1)
        self._stamps.fill(0)
        self._clock = 0
        self.hits = 0
        self.misses = 0


def make_device_cache(config: DeviceConfig) -> SegmentCache | None:
    """Build the device cache from the config (None if disabled)."""
    if config.cache_bytes <= 0:
        return None
    ways = 8
    lines = config.cache_bytes // config.segment_bytes
    # shrink associativity for tiny test caches
    while ways > 1 and (lines == 0 or lines % ways != 0 or lines // ways == 0):
        ways //= 2
    return SegmentCache(config.cache_bytes, config.segment_bytes, ways=ways)
