"""Block/warp scheduling for kernel launches.

Execution model
---------------
* A launch is a 1-D grid of blocks; each block contains ``block_warps``
  warps; each warp has ``warp_size`` lanes handled lockstep by NumPy.
* Blocks are independent (as on hardware) and run to completion one at a
  time; warps *within* a block are interleaved cooperatively: a kernel
  written as a generator runs until it yields a
  :class:`~repro.simt.warp.Barrier`, at which point the scheduler switches
  to the block's next warp.  All warps must reach the barrier before any
  proceeds - reaching the end of the kernel while siblings wait at a
  barrier raises :class:`~repro.errors.BarrierError`, which is exactly the
  deadlock the equivalent CUDA code would exhibit.
* Plain (non-generator) kernels are allowed for barrier-free code.
"""

from __future__ import annotations

import inspect
import time
from typing import Callable, TYPE_CHECKING

from repro.errors import BarrierError, LaunchError
from repro.simt.shared import SharedMemory
from repro.simt.warp import Barrier, WarpContext

if TYPE_CHECKING:  # pragma: no cover
    from repro.simt.device import Device

#: sentinel states for warp coroutines
_RUNNING, _AT_BARRIER, _DONE = 0, 1, 2


def launch(
    device: "Device",
    kernel: Callable,
    grid_blocks: int,
    block_warps: int,
    args: tuple = (),
) -> None:
    """Execute ``kernel`` over a grid (see module docstring for the model).

    Parameters
    ----------
    device:
        The simulated device (supplies config and metrics).
    kernel:
        ``kernel(ctx, *args)``; a generator function if it needs barriers.
    grid_blocks, block_warps:
        Launch geometry.
    args:
        Extra positional arguments forwarded to every warp's invocation.
    """
    if grid_blocks <= 0 or block_warps <= 0:
        raise LaunchError(
            f"launch geometry must be positive, got grid_blocks={grid_blocks}, "
            f"block_warps={block_warps}"
        )
    is_gen = inspect.isgeneratorfunction(kernel)
    metrics = device.metrics
    obs = device.obs
    san = device.sanitizer
    kernel_name = getattr(kernel, "__name__", "kernel")
    if san is not None:
        # launches serialise on the stream: reset per-launch conflict state
        san.launch_begin(kernel_name, grid_blocks, block_warps, obs=obs)
    t_start = 0.0
    cycles_start = 0
    if obs is not None:
        from repro.obs.hooks import Events

        obs.hooks.emit(
            Events.KERNEL_DISPATCH_BEFORE, kernel=f"simt/{kernel_name}",
            backend="simt", grid_blocks=grid_blocks, block_warps=block_warps,
        )
        cycles_start = metrics.estimated_cycles(device.config)
        t_start = time.perf_counter()
    metrics.blocks_launched += grid_blocks
    metrics.warps_launched += grid_blocks * block_warps

    block_cycles: list[int] = []
    for block_id in range(grid_blocks):
        cycles_before = metrics.estimated_cycles(device.config)
        shared = SharedMemory(device.config, metrics, block_id=block_id)
        contexts = [
            WarpContext(device, shared, block_id, w, block_warps, grid_blocks)
            for w in range(block_warps)
        ]
        if is_gen:
            coroutines = [kernel(ctx, *args) for ctx in contexts]
            _run_block(coroutines, block_id, metrics, san)
        else:
            for ctx in contexts:
                result = kernel(ctx, *args)
                if inspect.isgenerator(result):  # defensive: lambda returning gen
                    _run_block([result], block_id, metrics, san)
        if san is not None:
            san.block_end(contexts)
        block_cycles.append(metrics.estimated_cycles(device.config) - cycles_before)
    device.last_launch_block_cycles = block_cycles
    if san is not None:
        san.launch_end()
    if obs is not None:
        from repro.obs.hooks import Events

        seconds = time.perf_counter() - t_start
        cycles = metrics.estimated_cycles(device.config) - cycles_start
        obs.metrics.counter(f"dispatch/simt/{kernel_name}/launches").inc()
        obs.metrics.histogram(f"dispatch/simt/{kernel_name}/seconds").observe(seconds)
        obs.metrics.counter(f"dispatch/simt/{kernel_name}/cycles").inc(cycles)
        obs.hooks.emit(
            Events.KERNEL_DISPATCH_AFTER, kernel=f"simt/{kernel_name}",
            backend="simt", grid_blocks=grid_blocks, block_warps=block_warps,
            seconds=seconds, modeled_cycles=cycles,
        )


def _run_block(coroutines: list, block_id: int, metrics, san=None) -> None:
    """Round-robin the block's warp coroutines with barrier rendezvous."""
    states = [_RUNNING] * len(coroutines)
    while True:
        progressed = False
        for i, coro in enumerate(coroutines):
            if states[i] != _RUNNING:
                continue
            progressed = True
            try:
                yielded = next(coro)
            except StopIteration:
                states[i] = _DONE
                continue
            if not isinstance(yielded, Barrier):
                raise BarrierError(
                    f"kernel yielded {yielded!r}; kernels may only yield "
                    f"ctx.barrier() tokens"
                )
            states[i] = _AT_BARRIER
        if all(s == _DONE for s in states):
            return
        if all(s != _RUNNING for s in states):
            # every live warp is at the barrier: release them together
            waiting = [i for i, s in enumerate(states) if s == _AT_BARRIER]
            done = [i for i, s in enumerate(states) if s == _DONE]
            if done and waiting:
                raise BarrierError(
                    f"block {block_id}: warps {waiting} wait at a barrier that "
                    f"warps {done} exited the kernel without reaching"
                )
            metrics.barriers += 1
            if san is not None:
                # a released barrier starts a new sync epoch for the block
                san.barrier(block_id)
            for i in waiting:
                states[i] = _RUNNING
        elif not progressed:  # pragma: no cover - defensive
            raise BarrierError(f"block {block_id}: scheduler made no progress")
