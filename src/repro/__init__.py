"""w-KNNG: warp-centric K-nearest-neighbor graph construction.

Reproduction of *"Warp-centric K-Nearest Neighbor Graphs construction on
GPU"* (Meyer, Pozo, Nunan Zola - ICPP 2021).  See DESIGN.md for the system
inventory and EXPERIMENTS.md for the reproduced evaluation.

Quickstart::

    import numpy as np
    from repro import BuildConfig, WKNNGBuilder

    x = np.random.default_rng(0).standard_normal((10_000, 64), dtype=np.float32)
    graph = WKNNGBuilder(BuildConfig(k=16, strategy="tiled", seed=0)).build(x)
    graph.ids          # (10000, 16) neighbour indices, nearest first
    graph.dists        # squared L2 distances

Main entry points
-----------------
:class:`WKNNGBuilder` / :class:`BuildConfig`
    The paper's algorithm (three strategies: ``baseline``, ``atomic``,
    ``tiled``).
:mod:`repro.baselines`
    Exact brute force, FAISS-like IVF-Flat, CPU NN-descent.
:mod:`repro.simt`
    The warp-level SIMT simulator substrate.
:mod:`repro.data`
    Synthetic dataset generators matching the benchmark regimes.
"""

from repro._version import __version__
from repro.core import BuildConfig, BuildReport, KNNGraph, WKNNGBuilder
from repro.kernels import available_strategies
from repro.errors import ReproError

__all__ = [
    "__version__",
    "BuildConfig",
    "BuildReport",
    "KNNGraph",
    "WKNNGBuilder",
    "available_strategies",
    "ReproError",
]
