"""Vectorized connected components over an edge list.

Label propagation with pointer jumping (the array formulation of
union-find, a la Shiloach-Vishkin): every vertex starts as its own
component label; each round pulls the minimum label across edges and
then compresses label chains by repeated ``labels[labels]`` jumps.
Rounds are O(E) NumPy work and the label forest halves in depth per
jump, so convergence takes O(log n) rounds on real graphs - no Python
per-edge loop.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DataError


def connected_components(
    n_nodes: int, src: np.ndarray, dst: np.ndarray
) -> np.ndarray:
    """Component label per vertex; labels are component-minimum vertex ids.

    Edges are undirected regardless of orientation: ``(src[i], dst[i])``
    connects both endpoints.  Isolated vertices keep their own id.
    """
    src = np.asarray(src, dtype=np.int64).ravel()
    dst = np.asarray(dst, dtype=np.int64).ravel()
    if src.shape != dst.shape:
        raise DataError(
            f"src/dst must have matching shapes, got {src.shape} and {dst.shape}"
        )
    labels = np.arange(int(n_nodes), dtype=np.int64)
    if src.size == 0:
        return labels
    if src.size and (min(src.min(), dst.min()) < 0
                     or max(src.max(), dst.max()) >= n_nodes):
        raise DataError(f"edge endpoints must lie in [0, {n_nodes})")
    while True:
        prev = labels
        # hook: both endpoints of every edge adopt the smaller label
        labels = labels.copy()
        np.minimum.at(labels, src, prev[dst])
        np.minimum.at(labels, dst, prev[src])
        # compress: jump each label to its label until the forest is flat
        while True:
            jumped = labels[labels]
            if np.array_equal(jumped, labels):
                break
            labels = jumped
        if np.array_equal(labels, prev):
            return labels
