"""KNN-DBSCAN: density clustering reduced to the k-NN graph.

Chen et al. ("KNN-DBSCAN", arXiv:2009.04552) observe that DBSCAN's two
primitives - core-point selection and density-connectivity - both reduce
to the k-NN graph this library builds fast:

* a point is *core* iff at least ``min_pts`` points (itself included)
  lie within ``eps``; since k-NN rows are distance-sorted, that is one
  comparison against the ``(min_pts - 1)``-th neighbour distance column;
* two core points are density-connected along core-core edges of length
  <= ``eps``; restricting the symmetrised k-NN edge set to ``eps`` and
  running connected components over the core-core subset recovers the
  clusters;
* non-core points within ``eps`` of a core point are *border* points
  (assigned to their nearest core's cluster here, smallest core id on
  ties); everything else is noise (label ``-1``).

The reduction is exact when every point's eps-neighbourhood fits inside
its k nearest neighbours; larger neighbourhoods are truncated at k,
which can split clusters joined only through edges the graph does not
store (choose ``knn_k`` generously relative to the expected density).
:func:`exact_dbscan` is the O(n^2) reference used to measure that gap.

Follows the t-SNE app's build-then-consume pattern: construct with a
config, call :meth:`KNNDBSCAN.fit_predict` on raw points (builds the
graph internally) or on a prebuilt :class:`~repro.core.graph.KNNGraph`.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass

import numpy as np

from repro.core.config import BuildConfig
from repro.core.graph import KNNGraph
from repro.errors import ConfigurationError, DataError
from repro.neighbors.unionfind import connected_components

#: registry namespace the clustering metrics emit under
DBSCAN_METRICS_PREFIX = "dbscan/"


@dataclass
class DBSCANConfig:
    """KNN-DBSCAN parameters.

    Attributes
    ----------
    eps:
        Neighbourhood radius as a *squared* distance in the metric's
        prepared space (plain squared L2 for ``sqeuclidean``; for
        ``cosine``, ``2 * (1 - cos_sim)`` over normalised points) - the
        same units the graph's ``dists`` are stored in.
    min_pts:
        Minimum neighbourhood size (the point itself included, sklearn's
        ``min_samples`` convention) for a point to be core.
    knn_k:
        Graph degree to build when :meth:`KNNDBSCAN.fit_predict` receives
        raw points (default ``max(16, min_pts)``).  A prebuilt graph just
        needs ``k >= min_pts - 1``.
    metric:
        ``sqeuclidean`` or ``cosine`` (build-time metric for raw points).
    build:
        Full :class:`~repro.core.config.BuildConfig` override; when set,
        ``knn_k``/``metric`` are taken from it.
    """

    eps: float = 0.5
    min_pts: int = 5
    knn_k: int | None = None
    metric: str = "sqeuclidean"
    build: BuildConfig | None = None

    def __post_init__(self) -> None:
        if not self.eps > 0:
            raise ConfigurationError(f"eps must be > 0, got {self.eps}")
        if self.min_pts < 1:
            raise ConfigurationError(f"min_pts must be >= 1, got {self.min_pts}")
        if self.knn_k is not None and self.knn_k < max(1, self.min_pts - 1):
            raise ConfigurationError(
                f"knn_k={self.knn_k} cannot resolve min_pts={self.min_pts} "
                f"core tests (need >= {max(1, self.min_pts - 1)})"
            )

    def effective_k(self) -> int:
        return self.knn_k if self.knn_k is not None else max(16, self.min_pts)


class KNNDBSCAN:
    """DBSCAN over a k-NN graph.

    Usage::

        labels = KNNDBSCAN(DBSCANConfig(eps=0.4, min_pts=8)).fit_predict(x)

    After fitting, :attr:`labels_` holds the labels (``-1`` = noise),
    :attr:`core_mask_` the core-point mask, :attr:`n_clusters_` the
    cluster count, and :attr:`knn_graph` the graph consumed.
    """

    def __init__(self, config: DBSCANConfig | None = None, *, obs=None) -> None:
        self.config = config or DBSCANConfig()
        self.obs = obs
        self.knn_graph: KNNGraph | None = None
        self.labels_: np.ndarray | None = None
        self.core_mask_: np.ndarray | None = None
        self.n_clusters_: int = 0

    def _build_graph(self, points: np.ndarray) -> KNNGraph:
        from repro.core.builder import WKNNGBuilder  # lazy: keep import light

        cfg = self.config
        build = cfg.build or BuildConfig(
            k=min(cfg.effective_k(), max(1, points.shape[0] - 1)),
            strategy="tiled", seed=0, metric=cfg.metric,
        )
        return WKNNGBuilder(build, obs=self.obs).build(points)

    def fit_predict(self, data) -> np.ndarray:
        """Cluster a prebuilt :class:`KNNGraph` or raw ``(n, d)`` points."""
        cfg = self.config
        if isinstance(data, KNNGraph):
            graph = data
        else:
            points = np.asarray(data, dtype=np.float32)
            if points.ndim != 2:
                raise DataError(
                    f"points must be a 2-D (n, d) matrix, got ndim={points.ndim}"
                )
            graph = self._build_graph(points)
        if graph.k < cfg.min_pts - 1:
            raise ConfigurationError(
                f"graph degree {graph.k} cannot resolve min_pts="
                f"{cfg.min_pts} core tests (need k >= {cfg.min_pts - 1})"
            )
        self.knn_graph = graph
        span = (
            self.obs.trace.span(
                "dbscan.fit", n=graph.n, k=graph.k,
                eps=float(cfg.eps), min_pts=int(cfg.min_pts),
            )
            if self.obs is not None
            else nullcontext()
        )
        with span:
            labels, core = self._cluster(graph)
        self.labels_ = labels
        self.core_mask_ = core
        self.n_clusters_ = int(labels.max() + 1) if labels.size else 0
        if self.obs is not None:
            scoped = self.obs.metrics.scoped(DBSCAN_METRICS_PREFIX)
            scoped.counter("core_points").inc(int(core.sum()))
            scoped.counter("clusters").inc(self.n_clusters_)
            scoped.counter("noise").inc(int((labels == -1).sum()))
            scoped.counter("border").inc(int(((labels >= 0) & ~core).sum()))
        return labels

    def _cluster(self, graph: KNNGraph) -> tuple[np.ndarray, np.ndarray]:
        cfg = self.config
        n = graph.n
        eps = float(cfg.eps)
        # core test: the (min_pts - 1)-th nearest *other* point sits in
        # distance column min_pts - 2 (the point itself supplies one count)
        if cfg.min_pts == 1:
            core = np.ones(n, dtype=bool)
        else:
            col = cfg.min_pts - 2
            if col < 0:  # min_pts == 2 handled by col 0; guard anyway
                core = np.ones(n, dtype=bool)
            else:
                core = (graph.ids[:, col] >= 0) & (graph.dists[:, col] <= eps)
        edges, d = graph.to_coo(symmetrize=True)
        within = d <= eps
        if self.obs is not None:
            self.obs.metrics.scoped(DBSCAN_METRICS_PREFIX) \
                .counter("edges_eps").inc(int(within.sum()))
        u, v, d_eps = edges[0][within], edges[1][within], d[within]
        cc = core[u] & core[v]
        reps = connected_components(n, u[cc], v[cc])
        labels = np.where(core, reps, np.int64(-1))
        # border points: non-core with an eps-edge to a core point join
        # their nearest such core's cluster (smallest core id on ties)
        sel = core[u] & ~core[v]
        if sel.any():
            cores_sel, pts_sel, d_sel = u[sel], v[sel], d_eps[sel]
            order = np.lexsort((cores_sel, d_sel, pts_sel))
            pts_sorted = pts_sel[order]
            first = np.ones(pts_sorted.size, dtype=bool)
            first[1:] = pts_sorted[1:] != pts_sorted[:-1]
            labels[pts_sorted[first]] = reps[cores_sel[order][first]]
        # compact representative labels to 0..C-1 by first appearance
        assigned = np.flatnonzero(labels >= 0)
        final = np.full(n, -1, dtype=np.int64)
        if assigned.size:
            reps_in_order = labels[assigned]
            uniq, first_pos = np.unique(reps_in_order, return_index=True)
            rank = np.empty(uniq.size, dtype=np.int64)
            rank[np.argsort(first_pos, kind="stable")] = np.arange(uniq.size)
            final[assigned] = rank[np.searchsorted(uniq, reps_in_order)]
        return final, core


def exact_dbscan(
    x: np.ndarray,
    eps: float,
    min_pts: int,
    *,
    metric: str = "sqeuclidean",
    block_rows: int = 512,
) -> np.ndarray:
    """Reference DBSCAN by blocked brute force (sklearn-faithful).

    ``eps`` is a *squared* prepared-space distance, exactly as in
    :class:`DBSCANConfig`, so the two implementations compare at matched
    parameters.  Border points join the cluster of whichever core point
    reaches them first in the seeded BFS expansion (scan order by point
    id), matching sklearn's semantics; KNN-DBSCAN assigns borders to
    their *nearest* core instead, so labelings can differ on border
    points even when both are otherwise exact.
    """
    from repro.core.metric import check_metric, prepare_points
    from repro.kernels.distance import pairwise_sq_l2_gemm

    if not eps > 0:
        raise ConfigurationError(f"eps must be > 0, got {eps}")
    if min_pts < 1:
        raise ConfigurationError(f"min_pts must be >= 1, got {min_pts}")
    check_metric(metric)
    x = np.asarray(x, dtype=np.float32)
    if x.ndim != 2:
        raise DataError(f"x must be a 2-D (n, d) matrix, got ndim={x.ndim}")
    p, _ = prepare_points(x, metric)
    n = p.shape[0]
    # blocked eps-neighbourhood lists (self included)
    neighborhoods: list[np.ndarray] = []
    for lo in range(0, n, block_rows):
        d2 = pairwise_sq_l2_gemm(p[lo:lo + block_rows], p)
        for row in d2:
            neighborhoods.append(np.flatnonzero(row <= eps))
    core = np.fromiter(
        (nb.size >= min_pts for nb in neighborhoods), dtype=bool, count=n
    )
    labels = np.full(n, -1, dtype=np.int64)
    cluster = 0
    for i in range(n):
        if labels[i] != -1 or not core[i]:
            continue
        # BFS from the seed core point: cores expand, borders only join
        labels[i] = cluster
        queue = [i]
        while queue:
            j = queue.pop()
            if not core[j]:
                continue
            for nb in neighborhoods[j]:
                if labels[nb] == -1:
                    labels[nb] = cluster
                    queue.append(int(nb))
        cluster += 1
    return labels
