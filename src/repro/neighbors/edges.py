"""COO edge-list construction: ``knn_graph`` / ``radius_graph``.

The GNN message-passing interface over this library's indexes, with
EggNet-compatible semantics: edges come back as an int64 ``(2, E)``
array where **row 0 is the neighbour (source) and row 1 the query
(target)**, self-loops are controlled by ``loop``, a max radius ``r``
cuts edges on the exact reranked distances, and ``query_mask`` restricts
which points act as queries (targets) while neighbours still come from
the whole dataset.

Distances are squared distances in the metric's *prepared* space: plain
squared L2 for ``sqeuclidean``; for ``cosine`` the points are
L2-normalised first, so ``d = 2 * (1 - cos_sim)`` and ``r``/returned
distances live in that space too.

Backends
--------
``backend=None``
    One-shot :class:`~repro.apps.search.GraphSearchIndex` build over
    ``x`` (deterministic, seed 0 unless ``build_config`` says otherwise).
:class:`~repro.core.graph.KNNGraph`
    Use the prebuilt rows directly - no search at all (``x`` may be
    ``None``).  ``loop=True`` prepends the implicit zero-distance
    self-edge.
Engines (``query``/``search`` surface)
    :class:`~repro.apps.search.GraphSearchIndex`,
    :class:`~repro.core.mutable.MutableIndex` (or a pinned snapshot),
    :class:`~repro.baselines.bruteforce.BruteForceKNN` - one batched
    call.
:class:`~repro.serve.SearchClient` (``submit`` surface)
    :class:`~repro.serve.DirectClient`, :class:`~repro.serve.KNNServer`,
    :class:`~repro.serve.ClusterClient` - per-query futures, so the
    serving layer batches, caches and deadlines edge-building like any
    other traffic.
"""

from __future__ import annotations

from collections import deque
from contextlib import nullcontext
from typing import Any

import numpy as np

from repro.core.graph import KNNGraph
from repro.errors import ConfigurationError, DataError

#: registry namespace the edge-building metrics emit under
NEIGHBORS_METRICS_PREFIX = "neighbors/"

#: submissions kept in flight against a SearchClient frontend - enough to
#: keep the micro-batcher fed, comfortably under the default admission
#: queue limit so bulk edge-building never trips backpressure rejections
CLIENT_WINDOW = 64


def _resolve_query_ids(query_mask, n: int) -> np.ndarray:
    """Normalise ``query_mask`` to an int64 index array into the dataset."""
    if query_mask is None:
        return np.arange(n, dtype=np.int64)
    mask = np.asarray(query_mask)
    if mask.dtype == bool:
        if mask.shape != (n,):
            raise DataError(
                f"boolean query_mask must have shape ({n},), got {mask.shape}"
            )
        return np.flatnonzero(mask).astype(np.int64)
    if mask.ndim != 1:
        raise DataError(f"query_mask must be 1-D, got ndim={mask.ndim}")
    idx = mask.astype(np.int64)
    if idx.size and (idx.min() < 0 or idx.max() >= n):
        raise DataError(f"query_mask indices must lie in [0, {n})")
    return idx


def _check_metric(backend, metric: str) -> None:
    """Refuse a metric that contradicts what the backend was built with."""
    if isinstance(backend, KNNGraph):
        built = backend.meta.get("metric")
    else:
        built = getattr(backend, "metric", None)
    if isinstance(built, str) and built != metric:
        raise ConfigurationError(
            f"backend was built with metric '{built}' but metric="
            f"'{metric}' was requested"
        )


def _one_shot_index(x, k, metric, build_config, search_config, obs):
    from repro.apps.search import GraphSearchIndex  # lazy: avoid app cycle
    from repro.core.config import BuildConfig

    if build_config is None:
        n = x.shape[0]
        degree = int(min(max(16, k + 1), max(1, n - 1)))
        build_config = BuildConfig(
            k=degree, strategy="tiled", seed=0, metric=metric
        )
    return GraphSearchIndex.build(
        x, build_config=build_config, search_config=search_config, obs=obs
    )


def _rows_from_graph(graph: KNNGraph, qids: np.ndarray, k: int, loop: bool):
    """Fetch per-query candidate rows straight from a prebuilt graph."""
    need = k if not loop else k - 1  # non-self columns required
    if need > graph.k:
        raise ConfigurationError(
            f"backend graph has degree {graph.k}; k={k} with loop={loop} "
            f"needs {need} non-self neighbours per row"
        )
    ids = graph.ids[qids].astype(np.int64)
    dists = graph.dists[qids]
    if loop:
        # the graph stores no self-edges; the self-loop is implicit at
        # distance zero and deterministically outranks any tie
        ids = np.concatenate([qids[:, None], ids], axis=1)
        dists = np.concatenate(
            [np.zeros((qids.size, 1), dtype=dists.dtype), dists], axis=1
        )
    return ids, dists


def _fetch(backend: Any, queries: np.ndarray, k_fetch: int, ef):
    """One (m, k_fetch) candidate matrix from any non-graph backend."""
    if hasattr(backend, "submit"):
        # SearchClient frontends: per-query futures so the serving layer
        # micro-batches/caches/deadlines them.  A bounded in-flight
        # window respects the server's admission queue (no backpressure
        # rejections on bulk edge-building); positional collection keeps
        # the query -> row mapping
        results: list[Any] = [None] * queries.shape[0]
        pending: deque = deque()
        for i, q in enumerate(queries):
            while len(pending) >= CLIENT_WINDOW:
                j, fut = pending.popleft()
                results[j] = fut.result()
            pending.append((i, backend.submit(q, k_fetch, ef=ef)))
        while pending:
            j, fut = pending.popleft()
            results[j] = fut.result()
        ids = np.stack([res.ids for res in results])
        dists = np.stack([res.dists for res in results])
    elif hasattr(backend, "query"):
        ids, dists = backend.query(queries, k_fetch, ef=ef)
    elif hasattr(backend, "search"):
        ids, dists = backend.search(queries, k_fetch, ef=ef)
    else:
        raise ConfigurationError(
            f"backend {type(backend).__name__} exposes none of "
            "submit/query/search"
        )
    return np.asarray(ids, dtype=np.int64), np.asarray(dists)


def _assemble(ids, dists, qids, k, loop, r):
    """Filter candidate rows into the final edge arrays.

    Returns ``(edge_index, edge_dists, n_truncated)`` where
    ``n_truncated`` counts rows whose radius ball still held a full k
    edges - i.e. rows where ``r`` may be hiding neighbours beyond the
    fetch horizon (only meaningful when ``r`` is set).
    """
    valid = ids >= 0
    if not loop:
        valid &= ids != qids[:, None]
    # keep the first k valid candidates per row (ascending distance)
    rank = np.cumsum(valid, axis=1)
    valid &= rank <= k
    truncated = 0
    if r is not None:
        kept_full = valid.sum(axis=1) == k
        valid &= dists <= r
        truncated = int((kept_full & (valid.sum(axis=1) == k)).sum())
    counts = valid.sum(axis=1)
    src = ids[valid]  # row-major: query order, then ascending rank
    dst = np.repeat(qids, counts)
    return np.stack([src, dst]), dists[valid], truncated


def knn_graph(
    x,
    k: int,
    *,
    loop: bool = False,
    r: float | None = None,
    query_mask=None,
    metric: str = "sqeuclidean",
    backend: Any = None,
    ef: int | None = None,
    build_config=None,
    search_config=None,
    obs=None,
    return_dists: bool = False,
):
    """k-NN edges of ``x`` as an int64 COO ``(2, E)`` array.

    ``edge_index[0]`` holds neighbour (source) ids, ``edge_index[1]``
    the query (target) ids - the EggNet/PyG ``knn_graph`` convention -
    ordered by query, then ascending distance.  ``loop=False`` (default)
    excludes the self-edge by id; ``loop=True`` counts the self-edge
    toward ``k``.  ``r`` drops edges with (exact, reranked) squared
    distance above it; ``query_mask`` (bool mask or index array)
    restricts which points emit edges.  With ``return_dists=True`` the
    per-edge distances come back too.
    """
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")
    if r is not None and not r > 0:
        raise ConfigurationError(f"r must be > 0, got {r}")

    if isinstance(backend, KNNGraph):
        n = backend.n
    else:
        if x is None:
            raise DataError("x is required unless backend is a KNNGraph")
        x = np.asarray(x, dtype=np.float32)
        if x.ndim != 2:
            raise DataError(f"x must be a 2-D (n, d) matrix, got ndim={x.ndim}")
        n = x.shape[0]
        dim = getattr(backend, "dim", None)
        if dim is not None and int(dim) != x.shape[1]:
            raise DataError(
                f"x has dim {x.shape[1]} but the backend serves dim {int(dim)}"
            )
    if backend is not None:
        _check_metric(backend, metric)

    qids = _resolve_query_ids(query_mask, n)
    span = (
        obs.trace.span(
            "neighbors.knn_graph", k=int(k), loop=bool(loop),
            n_queries=int(qids.size), radius=float(r) if r is not None else -1.0,
        )
        if obs is not None
        else nullcontext()
    )
    with span:
        if qids.size == 0:
            edge_index = np.empty((2, 0), dtype=np.int64)
            edge_dists = np.empty(0, dtype=np.float32)
            truncated = 0
        elif isinstance(backend, KNNGraph):
            ids, dists = _rows_from_graph(backend, qids, k, loop)
            edge_index, edge_dists, truncated = _assemble(
                ids, dists, qids, k, loop, r
            )
        else:
            if backend is None:
                backend = _one_shot_index(
                    x, k, metric, build_config, search_config, obs
                )
            # over-fetch one slot when the self-edge will be dropped, so
            # a full k non-self neighbours survive the filter
            k_fetch = min(k if loop else k + 1, n)
            ids, dists = _fetch(backend, x[qids], k_fetch, ef)
            edge_index, edge_dists, truncated = _assemble(
                ids, dists, qids, k, loop, r
            )
        if obs is not None:
            scoped = obs.metrics.scoped(NEIGHBORS_METRICS_PREFIX)
            scoped.counter("edges_emitted").inc(int(edge_index.shape[1]))
            if truncated:
                scoped.counter("radius_truncated").inc(truncated)
    if return_dists:
        return edge_index, edge_dists
    return edge_index


def radius_graph(
    x,
    r: float,
    *,
    max_num_neighbors: int = 32,
    loop: bool = False,
    query_mask=None,
    metric: str = "sqeuclidean",
    backend: Any = None,
    ef: int | None = None,
    build_config=None,
    search_config=None,
    obs=None,
    return_dists: bool = False,
):
    """Edges within squared radius ``r``, at most ``max_num_neighbors`` each.

    Implemented as over-fetch-then-filter: the ``max_num_neighbors``
    nearest candidates are fetched and edges beyond ``r`` dropped on the
    exact distances.  A query whose ball holds more than
    ``max_num_neighbors`` points is silently truncated to the nearest
    ones - flagged on the ``neighbors/radius_truncated`` counter when
    ``obs`` is passed.
    """
    if r is None or not r > 0:
        raise ConfigurationError(f"r must be > 0, got {r}")
    return knn_graph(
        x,
        max_num_neighbors,
        loop=loop,
        r=r,
        query_mask=query_mask,
        metric=metric,
        backend=backend,
        ef=ef,
        build_config=build_config,
        search_config=search_config,
        obs=obs,
        return_dists=return_dists,
    )
