"""Downstream workload surface: edge lists, radius queries, KNN-DBSCAN.

The index answers ``(ids, dists)`` top-k queries; real consumers want
other shapes.  This package converts between them:

* :func:`knn_graph` / :func:`radius_graph` - int64 COO ``(2, E)`` edge
  lists with self-loop control, max-radius cutoffs and query-subset
  masks (the GNN message-passing interface, EggNet-compatible), backed
  by a prebuilt :class:`~repro.core.graph.KNNGraph`, any engine with a
  ``query``/``search`` surface, a :class:`~repro.serve.SearchClient`
  frontend (server or sharded cluster), or a one-shot build;
* :class:`KNNDBSCAN` - density clustering reduced to the k-NN graph
  (Chen et al., "KNN-DBSCAN"): core points from the k-NN distance
  column, an eps-restricted symmetrised edge set, and union-find
  connected components;
* :func:`exact_dbscan` - the O(n^2) reference implementation DBSCAN
  quality is measured against;
* :func:`connected_components` - the vectorized union-find used by the
  clustering layer.

See ``docs/workloads.md`` for semantics (edge conventions, distance
units per metric, DBSCAN guarantees and limits).
"""

from repro.neighbors.dbscan import DBSCANConfig, KNNDBSCAN, exact_dbscan
from repro.neighbors.edges import knn_graph, radius_graph
from repro.neighbors.unionfind import connected_components

__all__ = [
    "DBSCANConfig",
    "KNNDBSCAN",
    "connected_components",
    "exact_dbscan",
    "knn_graph",
    "radius_graph",
]
