"""Exception hierarchy for the ``repro`` package.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch one type to handle any library
failure.  Subsystems raise the most specific subclass that applies:

* configuration / argument problems -> :class:`ConfigurationError`
* malformed or unsupported input data -> :class:`DataError`
* misuse of the SIMT simulator (out-of-bounds access, barrier misuse,
  launching with inconsistent geometry, ...) -> :class:`SimtError` and its
  subclasses
* benchmark-harness problems (e.g. the recall-matching search failed to
  bracket the target) -> :class:`BenchmarkError`
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError, ValueError):
    """An invalid parameter or combination of parameters was supplied."""


class DataError(ReproError, ValueError):
    """Input data is malformed (wrong shape, dtype, NaNs, empty, ...)."""


class SimtError(ReproError):
    """Base class for errors in the SIMT GPU simulator substrate."""


class MemoryAccessError(SimtError, IndexError):
    """A simulated memory access was out of bounds or misaligned."""


class LaunchError(SimtError, ValueError):
    """A kernel launch was configured inconsistently."""


class BarrierError(SimtError, RuntimeError):
    """Block barrier misuse: not all warps reached the same barrier."""


class AtomicError(SimtError, TypeError):
    """An atomic operation was applied to an unsupported buffer/dtype."""


class RaceError(SimtError, RuntimeError):
    """The memory sanitizer ("wksan") detected undefined behaviour.

    Raised (in ``raise`` mode) for unordered conflicting accesses, duplicate
    intra-warp scatter targets, uninitialized reads, out-of-bounds sanitized
    accesses and lock-discipline violations.  Carries the structured
    :class:`repro.simt.sanitizer.Finding` as :attr:`finding`; the message
    names both conflicting access sites when two exist.
    """

    def __init__(self, message: str, finding=None) -> None:
        super().__init__(message)
        #: the structured :class:`repro.simt.sanitizer.Finding` (or ``None``)
        self.finding = finding


class BenchmarkError(ReproError, RuntimeError):
    """The benchmark harness could not complete a requested measurement."""


class ServeError(ReproError, RuntimeError):
    """Base class for errors raised by the ``repro.serve`` query service."""


class ServerOverloaded(ServeError):
    """Admission control rejected a request: the queue is at its limit.

    Raised synchronously by :meth:`repro.serve.KNNServer.submit` when the
    bounded admission queue has reached ``ServeConfig.queue_limit`` - the
    backpressure signal clients are expected to react to (back off, retry
    with jitter, or shed load upstream).  Carries the queue depth observed
    at rejection time as :attr:`queue_depth`.
    """

    def __init__(self, message: str, queue_depth: int = 0) -> None:
        super().__init__(message)
        #: admission-queue depth at the moment of rejection
        self.queue_depth = int(queue_depth)


class DeadlineExceeded(ServeError, TimeoutError):
    """A request's deadline expired before a result could be returned.

    Set on the request's future either when the deadline expires while the
    request is still queued (dropped before scoring) or when batch
    execution finishes past the deadline (the result is discarded rather
    than returned late as a success).
    """


class ServerClosed(ServeError):
    """The server was stopped before (or while) handling the request."""


class ClusterError(ServeError):
    """Base class for errors raised by the sharded serving cluster."""


class ReplicaUnavailable(ClusterError):
    """One replica worker could not answer (crashed, hung past its RPC
    timeout, or is administratively down).

    Raised *inside* the router's shard call and normally absorbed by
    failover to a sibling replica; it only reaches callers when used as
    the cause of a :class:`ShardUnavailable`.
    """


class ShardUnavailable(ClusterError):
    """Every replica of one shard failed to answer a request.

    With no live replica the shard's slice of the dataset cannot be
    scored, so returning a merged result would silently drop neighbours -
    the cluster fails the request instead (capacity degrades, correctness
    never does).  Carries the shard index as :attr:`shard_id`.
    """

    def __init__(self, message: str, shard_id: int = -1) -> None:
        super().__init__(message)
        #: index of the shard that could not be served
        self.shard_id = int(shard_id)
