"""Recall matching: find configurations hitting a target accuracy.

The paper's headline ("up to 639% faster ... considering an equivalent
accuracy") requires comparing systems *at the same recall*.  This module
searches each system's accuracy dial for the cheapest configuration whose
recall reaches the target:

* IVF-Flat: ``nprobe`` is monotone in recall -> binary-search-like doubling
  then refinement over nprobe;
* w-KNNG: the forest size (``n_trees``) is the dial (monotone in recall
  for fixed leaf size) -> linear scan with early exit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.ivf import IVFConfig, IVFFlatIndex
from repro.bench.sweep import SweepResult, run_ivf, run_wknng
from repro.core.config import BuildConfig
from repro.errors import BenchmarkError


@dataclass
class MatchResult:
    """The cheapest configuration found at (or above) the target recall."""

    target_recall: float
    achieved: SweepResult
    attempts: list[SweepResult]

    @property
    def matched(self) -> bool:
        return self.achieved.recall >= self.target_recall


def match_ivf_recall(
    x: np.ndarray,
    exact_ids: np.ndarray,
    k: int,
    target_recall: float,
    ivf_config: IVFConfig | None = None,
    max_nprobe: int | None = None,
) -> MatchResult:
    """Find the smallest ``nprobe`` whose KNNG recall reaches the target.

    The index is trained once; only searches repeat.  Doubles ``nprobe``
    until the target is bracketed, then binary-searches the bracket.
    Raises :class:`BenchmarkError` if even probing every list falls short
    (cannot happen for target <= 1.0 minus quantiser-boundary losses; the
    caller should then lower the target).
    """
    cfg = ivf_config or IVFConfig(seed=7)
    index = IVFFlatIndex(cfg).fit(x)
    limit = min(max_nprobe or index.n_lists, index.n_lists)
    attempts: list[SweepResult] = []

    def measure(nprobe: int) -> SweepResult:
        res = run_ivf(x, exact_ids, k, cfg, nprobe=nprobe, index=index)
        attempts.append(res)
        return res

    # doubling phase
    nprobe = 1
    res = measure(nprobe)
    while res.recall < target_recall and nprobe < limit:
        nprobe = min(2 * nprobe, limit)
        res = measure(nprobe)
    if res.recall < target_recall:
        raise BenchmarkError(
            f"IVF cannot reach recall {target_recall:.3f} even with "
            f"nprobe={limit} (got {res.recall:.3f}); lower the target"
        )
    # binary refinement between the last failing and first passing nprobe
    lo = max(1, nprobe // 2)
    hi = nprobe
    best = res
    while lo + 1 < hi:
        mid = (lo + hi) // 2
        res = measure(mid)
        if res.recall >= target_recall:
            hi, best = mid, res
        else:
            lo = mid
    return MatchResult(target_recall=target_recall, achieved=best, attempts=attempts)


def match_wknng_recall(
    x: np.ndarray,
    exact_ids: np.ndarray,
    base_config: BuildConfig,
    target_recall: float,
    max_trees: int = 32,
    refine_budgets: tuple[int, ...] = (0, 1, 2, 4, 8),
) -> MatchResult:
    """Find the cheapest (forest size, refinement budget) hitting the target.

    w-KNNG has two accuracy dials with different cost profiles: more trees
    buy leaf-phase candidates, more local-join rounds buy transitive
    closure.  The search walks tree counts upward (doubling), and at each
    level tries refinement budgets ascending, keeping the first (cheapest)
    budget that reaches the target; among all matching configurations the
    one with the fewest modeled cycles wins.  Refinement stops early on
    convergence (``refine_delta``), so large budgets are safe to probe.
    """
    attempts: list[SweepResult] = []

    def measure(n_trees: int, refine_iters: int) -> SweepResult:
        cfg = BuildConfig(
            k=base_config.k,
            strategy=base_config.strategy,
            strategy_kwargs=dict(base_config.strategy_kwargs),
            n_trees=n_trees,
            leaf_size=base_config.leaf_size,
            refine_iters=refine_iters,
            refine_sample=base_config.refine_sample,
            refine_fanout=base_config.refine_fanout,
            refine_delta=base_config.refine_delta,
            seed=base_config.seed,
        )
        res = run_wknng(x, exact_ids, cfg)
        attempts.append(res)
        return res

    budgets = tuple(sorted(set(list(refine_budgets) + [base_config.refine_iters])))
    best: SweepResult | None = None
    ceiling = 0.0
    trees = max(1, base_config.n_trees)
    while trees <= max_trees:
        for iters in budgets:
            res = measure(trees, iters)
            ceiling = max(ceiling, res.recall)
            if res.recall >= target_recall:
                if best is None or res.modeled_cycles < best.modeled_cycles:
                    best = res
                break  # larger budgets at this tree count only cost more
        if best is not None and best.params["n_trees"] < trees:
            break  # adding trees stopped helping the cost
        trees *= 2
    if best is None:
        raise BenchmarkError(
            f"w-KNNG ({base_config.strategy}) cannot reach recall "
            f"{target_recall:.3f} with <= {max_trees} trees "
            f"(got {ceiling:.3f}); raise leaf_size/refine_iters"
        )
    return MatchResult(target_recall=target_recall, achieved=best, attempts=attempts)
