"""Aggregate benchmark outputs into one experiment report.

``pytest benchmarks/ --benchmark-only`` leaves one text artifact per
experiment under ``benchmarks/results/``; :func:`build_report` stitches
them into a single markdown document ordered by the DESIGN.md experiment
index - the measured companion to EXPERIMENTS.md.

Run directly::

    python -m repro.bench.report [results_dir] [-o REPORT.md]
"""

from __future__ import annotations

import argparse
from datetime import date
from pathlib import Path

#: experiment id -> section heading, in DESIGN.md order
SECTIONS = [
    ("T1_", "T1 — w-KNNG vs FAISS-like IVF at equivalent recall"),
    ("T2_", "T2 — strategy comparison across dimensionality"),
    ("F1_", "F1 — recall vs cost curves"),
    ("F2_", "F2 — atomic/tiled dimensionality crossover"),
    ("F3_", "F3 — scaling with dataset size"),
    ("F4_", "F4 — scaling with neighbour count K"),
    ("F5_", "F5 — refinement rounds"),
    ("F6_", "F6 — warp-level microarchitecture metrics"),
    ("F7_", "F7 — forest ablation"),
    ("F8_", "F8 — t-SNE application"),
]


def build_report(results_dir: Path) -> str:
    """Render all result artifacts as one markdown report."""
    lines = [
        "# w-KNNG measured results",
        "",
        f"Generated {date.today().isoformat()} from `{results_dir}`.",
        "Regenerate with `pytest benchmarks/ --benchmark-only`.",
        "",
    ]
    found_any = False
    for prefix, heading in SECTIONS:
        files = sorted(results_dir.glob(f"{prefix}*.txt"))
        if not files:
            continue
        found_any = True
        lines.append(f"## {heading}")
        lines.append("")
        for f in files:
            lines.append(f"### {f.stem}")
            lines.append("")
            lines.append("```")
            lines.append(f.read_text().rstrip())
            lines.append("```")
            lines.append("")
    if not found_any:
        lines.append("*(no result artifacts found - run the benchmarks first)*")
    return "\n".join(lines) + "\n"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "results_dir", nargs="?",
        default=str(Path(__file__).resolve().parents[3] / "benchmarks" / "results"),
    )
    parser.add_argument("-o", "--output", default=None,
                        help="write to a file instead of stdout")
    args = parser.parse_args(argv)
    report = build_report(Path(args.results_dir))
    if args.output:
        Path(args.output).write_text(report)
        print(f"wrote {args.output}")
    else:
        print(report)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
