"""Analytic GPU cycle model for strategy and baseline comparisons.

Why a model
-----------
The vectorised backend produces the *same graphs* as GPU kernels would and
counts the *same operations*, but its wall-clock is set by NumPy/BLAS
constants: a bulk ``argpartition`` merge is always the fastest thing NumPy
can do regardless of dimensionality, so wall-clock alone cannot exhibit GPU
phenomena such as the paper's atomic-vs-tiled crossover.  This module
prices the recorded operation counters with the SIMT device model
(:class:`repro.simt.config.DeviceConfig`) - the same weights the
event-level simulator uses - plus two analytic ingredients the event
simulator omits:

**Working-set cache.**  The *direct* distance schedule (baseline/atomic)
streams every candidate point once per pair, and every insertion visit
scans a k-NN list; both working sets (``leaf_size*dim*4`` bytes of points,
``leaf_size*k*16`` bytes of lists) are re-touched constantly, so their
per-transaction cost interpolates between ``cache_hit_cycles`` and
``global_latency_cycles`` with the standard working-set hit estimate
``min(1, cache_bytes / working_set)``.  ``cache_bytes`` is the *effective
per-block* share of on-chip cache (L1 divided by resident blocks), which
is why its default (32 KiB) is far below a whole L1.

**Sub-warp packing.**  At dimensionalities below the warp width, direct
kernels pack multiple pairs per warp op (lanes split across candidates -
the standard low-d trick, and the reason the paper finds the atomic
variant "more successful when applied to a smaller number of dimensions").
Direct-schedule per-pair lane work therefore scales with
``max(dim, warp/8) / warp`` (granularity floor of a quarter-warp), while
the tiled kernel's structure is locked to warp-wide tiles.

The crossover mechanism this model exhibits, with honest counter-driven
inputs:

* low ``dim``: points and lists fit in cache, direct distance is nearly
  free and sub-warp packed -> the atomic strategy's single cached scan +
  rare CAS beats the tiled strategy's fixed tile/merge/barrier machinery;
* high ``dim``: the streamed working set overflows cache and direct
  transactions degrade to DRAM latency, while tiled staging keeps per-pair
  traffic at ``2/reuse`` of a point read -> tiled wins;
* ``baseline`` pays the atomic path's costs *plus* a lock acquire/release
  pair and a second array scan per visit - always worse than atomic, as in
  the paper.

Per-strategy insertion pricing (matching the ``simt_kernels``
implementations): ``baseline``/``atomic`` compute each unordered pair once
and visit *both* endpoint lists (their synchronisation makes scattered
concurrent writers safe), priced per ``candidates_seen`` visit; ``atomic``
CAS attempts (accepts + contention retries, both counted by the vectorised
backend) add ``atomic_cycles`` each.  ``tiled`` computes both pair
directions but each warp updates only its own row: one shared-memory
append per visit plus, per ``tile_size`` candidates, a warp bitonic sort,
a merge, four list transactions and a block-synchronisation overhead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import ceil, log2

from repro.kernels.counters import OpCounters
from repro.simt.config import DeviceConfig


@dataclass
class CycleBreakdown:
    """Modeled cycles split by phase (``total`` sums them)."""

    distance: int = 0
    insertion: int = 0
    selection: int = 0
    overheads: int = 0
    detail: dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return int(self.distance + self.insertion + self.selection + self.overheads)

    def as_dict(self) -> dict[str, float]:
        out = {
            "distance_cycles": self.distance,
            "insertion_cycles": self.insertion,
            "selection_cycles": self.selection,
            "overhead_cycles": self.overheads,
            "total_cycles": self.total,
        }
        out.update(self.detail)
        return out


def _transaction_cost(working_set_bytes: float, config: DeviceConfig) -> float:
    """Per-transaction cycles under the working-set cache model."""
    if working_set_bytes <= 0:
        return float(config.cache_hit_cycles)
    hit = min(1.0, config.cache_bytes / working_set_bytes)
    return hit * config.cache_hit_cycles + (1.0 - hit) * config.global_latency_cycles


def _list_scan_transactions(k: int, config: DeviceConfig) -> int:
    """Transactions to read one k-slot list stored as 8 bytes per slot."""
    return max(1, ceil(8 * k / config.segment_bytes))


def wknng_cycles(
    strategy: str,
    counters: OpCounters,
    *,
    dim: int,
    k: int,
    leaf_size: int,
    tile_size: int = 32,
    config: DeviceConfig | None = None,
) -> CycleBreakdown:
    """Price a w-KNNG build's counters in modeled GPU cycles.

    Parameters
    ----------
    strategy:
        ``"baseline"`` / ``"atomic"`` / ``"tiled"``.
    counters:
        The strategy's accumulated :class:`OpCounters`.
    dim, k, leaf_size, tile_size:
        Workload/geometry parameters the per-operation costs depend on.
    config:
        Device model (defaults to :class:`DeviceConfig`).
    """
    c = config or DeviceConfig()
    w = c.warp_size
    log_w = int(log2(w))
    pairs = counters.distance_evals
    seen = counters.candidates_seen
    scan_tx = _list_scan_transactions(k, c)
    t_lists = _transaction_cost(leaf_size * k * 16, c)
    bd = CycleBreakdown()

    if strategy in ("baseline", "atomic"):
        # direct schedule with sub-warp packing; streamed candidate points
        work_frac = max(dim, w / 8) / w
        t_pts = _transaction_cost(leaf_size * dim * 4, c)
        per_pair = work_frac * (t_pts + 3 * c.alu_cycles) + 2 * log_w * c.alu_cycles * work_frac
        bd.distance = int(pairs * per_pair)
        bd.detail["direct_working_set_bytes"] = leaf_size * dim * 4
        bd.detail["point_transaction_cost"] = t_pts
    elif strategy == "tiled":
        # GEMM/shared staging: each point read once per tile of `reuse` pairs
        chunks = dim / w
        reuse = min(leaf_size, w)
        per_pair = (
            (2 * chunks / reuse) * c.global_latency_cycles
            + 2 * chunks * c.shared_cycles
            + 3 * chunks * c.alu_cycles
        )
        bd.distance = int(pairs * per_pair)
        bd.detail["staging_reuse_factor"] = reuse
    else:
        raise ValueError(f"unknown strategy {strategy!r}")

    scan_frac = max(k, w / 8) / w
    if strategy == "atomic":
        # Half the visits target the warp's *own* row, whose current maximum
        # is cached in a register across the leaf loop - those quick-reject
        # with one compare.  The other half are the scattered j-side visits,
        # which must scan the packed list.  Accepted candidates (attempts)
        # re-scan to locate the max slot and CAS it.
        per_scan = t_lists * scan_tx + 2 * log_w * c.alu_cycles * scan_frac
        bd.insertion = int(
            (seen / 2) * per_scan
            + (seen / 2) * c.alu_cycles
            + counters.atomic_attempts * (c.atomic_cycles + per_scan)
        )
    elif strategy == "baseline":
        per_visit = (
            2 * c.atomic_cycles  # lock acquire + release
            + 2 * t_lists * scan_tx  # ids + dists array scans
            + 2 * log_w * c.alu_cycles * scan_frac
        )
        bd.insertion = int(seen * per_visit + counters.candidates_inserted * t_lists)
    else:  # tiled
        # The tiled kernel cannot pre-filter: a per-candidate membership scan
        # would defeat the amortisation, so *every* candidate flows through
        # the tile (append) and the bulk merge does the filtering.  Merge
        # volume is therefore priced on candidates_seen, not on the
        # post-filter survivors the vectorised implementation merges.
        append = seen * c.shared_cycles
        merges = seen / max(1, tile_size)
        per_merge = (
            3 * log_w * log_w * c.alu_cycles  # bitonic sort of the tile
            + (log_w + 1) * c.alu_cycles  # merge network
            + k * c.alu_cycles  # membership dedupe against the list
            + 4 * scan_tx * t_lists  # load + store ids/dists
            + 2 * tile_size * c.shared_cycles  # tile read-back
            + 2 * c.global_latency_cycles  # block synchronisation
        )
        bd.insertion = int(append + merges * per_merge)
        bd.detail["merges"] = merges
    bd.detail["list_transaction_cost"] = t_lists
    return bd


def preferred_strategy(
    dim: int,
    k: int,
    leaf_size: int,
    tile_size: int = 32,
    config: DeviceConfig | None = None,
) -> str:
    """The paper's guidance as a function: ``"atomic"`` or ``"tiled"``.

    Compares the two strategies' modeled cycles on *nominal* per-pair work
    proportions (measured on the clustered workloads: an unordered-pair
    strategy sees each pair once and visits two lists; acceptance rate
    ~0.3 once lists warm up) and returns the cheaper one for the given
    geometry.  This is what ``BuildConfig(strategy="auto")`` resolves
    through.
    """
    pairs = 10_000  # any common scale; only the ratio matters
    atomic = wknng_cycles(
        "atomic",
        OpCounters(distance_evals=pairs, candidates_seen=2 * pairs,
                   atomic_attempts=int(0.3 * pairs)),
        dim=dim, k=k, leaf_size=leaf_size, tile_size=tile_size, config=config,
    ).total
    tiled = wknng_cycles(
        "tiled",
        OpCounters(distance_evals=2 * pairs, candidates_seen=2 * pairs),
        dim=dim, k=k, leaf_size=leaf_size, tile_size=tile_size, config=config,
    ).total
    return "atomic" if atomic <= tiled else "tiled"


def bruteforce_cycles(
    n: int,
    *,
    dim: int,
    k: int,
    config: DeviceConfig | None = None,
) -> CycleBreakdown:
    """Price an exact GPU brute-force KNNG in the same cycle currency.

    The reference point for the approximate methods: ``n * (n - 1)``
    distance evaluations under the staged (GEMM-like) schedule plus
    warp-select top-k, i.e. FAISS ``IndexFlat`` applied to every point.
    """
    c = config or DeviceConfig()
    w = c.warp_size
    chunks = dim / w
    log_w = int(log2(w))
    pairs = n * (n - 1)
    bd = CycleBreakdown()
    per_pair = (
        (2 * chunks / w) * c.global_latency_cycles
        + 2 * chunks * c.shared_cycles
        + 3 * chunks * c.alu_cycles
    )
    bd.distance = int(pairs * per_pair)
    scan_tx = _list_scan_transactions(k, c)
    bd.selection = int(
        pairs * 2 * c.alu_cycles
        + (pairs / w) * (3 * log_w * log_w * c.alu_cycles
                         + 2 * scan_tx * c.global_latency_cycles)
    )
    bd.detail["pairs"] = pairs
    return bd


def ivf_cycles(
    search_stats: dict[str, int],
    *,
    dim: int,
    k: int,
    config: DeviceConfig | None = None,
) -> CycleBreakdown:
    """Price an IVF-Flat KNNG search in the same cycle currency.

    GPU IVF (as in FAISS) scans inverted lists with well-coalesced,
    shared-staged reads (the same schedule as the tiled strategy, reuse ~
    warp width) and selects with an in-register warp top-k structure
    costing a few ALU ops per scanned candidate plus a k-sized merge per
    ``warp_size`` candidates.
    """
    c = config or DeviceConfig()
    w = c.warp_size
    chunks = dim / w
    log_w = int(log2(w))
    cand = int(search_stats.get("candidate_distance_evals", 0))
    cent = int(search_stats.get("centroid_distance_evals", 0))
    bd = CycleBreakdown()
    per_pair = (
        (2 * chunks / w) * c.global_latency_cycles
        + 2 * chunks * c.shared_cycles
        + 3 * chunks * c.alu_cycles
    )
    bd.distance = int((cand + cent) * per_pair)
    scan_tx = _list_scan_transactions(k, c)
    per_cand_select = 2 * c.alu_cycles
    per_block_merge = 3 * log_w * log_w * c.alu_cycles + 2 * scan_tx * c.global_latency_cycles
    bd.selection = int(cand * per_cand_select + (cand / w) * per_block_merge)
    bd.detail["candidate_distance_evals"] = cand
    bd.detail["centroid_distance_evals"] = cent
    return bd
