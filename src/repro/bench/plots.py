"""ASCII figure rendering for benchmark series.

The paper's evaluation figures are line charts (recall vs time, ratio vs
dimensionality).  This module renders the same series as terminal-friendly
ASCII plots so the bench targets can emit *figures*, not only tables,
without a plotting dependency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

#: plot glyphs assigned to series in order
_GLYPHS = "ox+*#@%&"


@dataclass
class Series:
    """One named line of (x, y) points."""

    name: str
    xs: list[float] = field(default_factory=list)
    ys: list[float] = field(default_factory=list)

    def add(self, x: float, y: float) -> "Series":
        self.xs.append(float(x))
        self.ys.append(float(y))
        return self


def _ticks(lo: float, hi: float, n: int) -> list[float]:
    if hi <= lo:
        hi = lo + 1.0
    return [lo + (hi - lo) * i / (n - 1) for i in range(n)]


def ascii_plot(
    series: list[Series],
    *,
    width: int = 64,
    height: int = 18,
    title: str = "",
    xlabel: str = "",
    ylabel: str = "",
    logx: bool = False,
    logy: bool = False,
) -> str:
    """Render line series as an ASCII chart with axes and a legend.

    Log scales require strictly positive coordinates on that axis.
    """
    pts = [(s, x, y) for s in series for x, y in zip(s.xs, s.ys)]
    if not pts:
        return "(empty plot)"

    def tx(v: float) -> float:
        return math.log10(v) if logx else v

    def ty(v: float) -> float:
        return math.log10(v) if logy else v

    for _, x, y in pts:
        if logx and x <= 0 or logy and y <= 0:
            raise ValueError("log-scaled axes need positive coordinates")

    xs = [tx(x) for _, x, _ in pts]
    ys = [ty(y) for _, _, y in pts]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1
    if y_hi == y_lo:
        y_hi = y_lo + 1

    grid = [[" "] * width for _ in range(height)]
    for si, s in enumerate(series):
        glyph = _GLYPHS[si % len(_GLYPHS)]
        coords = []
        for x, y in zip(s.xs, s.ys):
            cx = int(round((tx(x) - x_lo) / (x_hi - x_lo) * (width - 1)))
            cy = int(round((ty(y) - y_lo) / (y_hi - y_lo) * (height - 1)))
            coords.append((cx, height - 1 - cy))
        # connect consecutive points with interpolated marks
        for (x0, y0), (x1, y1) in zip(coords, coords[1:]):
            steps = max(abs(x1 - x0), abs(y1 - y0), 1)
            for t in range(steps + 1):
                cx = round(x0 + (x1 - x0) * t / steps)
                cy = round(y0 + (y1 - y0) * t / steps)
                if grid[cy][cx] == " ":
                    grid[cy][cx] = "."
        for cx, cy in coords:
            grid[cy][cx] = glyph

    def fmt(v: float, is_log: bool) -> str:
        value = 10**v if is_log else v
        return f"{value:.3g}"

    lines = []
    if title:
        lines.append(title.center(width + 10))
    y_labels = [fmt(y_hi, logy), fmt((y_lo + y_hi) / 2, logy), fmt(y_lo, logy)]
    label_w = max(len(l) for l in y_labels)
    for r, row in enumerate(grid):
        if r == 0:
            lab = y_labels[0]
        elif r == height // 2:
            lab = y_labels[1]
        elif r == height - 1:
            lab = y_labels[2]
        else:
            lab = ""
        lines.append(f"{lab:>{label_w}s} |" + "".join(row))
    lines.append(" " * label_w + " +" + "-" * width)
    x_left = fmt(x_lo, logx)
    x_right = fmt(x_hi, logx)
    pad = width - len(x_left) - len(x_right)
    lines.append(" " * (label_w + 2) + x_left + " " * max(1, pad) + x_right)
    if xlabel or ylabel:
        lines.append(f"  x: {xlabel}   y: {ylabel}".rstrip())
    legend = "   ".join(
        f"{_GLYPHS[i % len(_GLYPHS)]} {s.name}" for i, s in enumerate(series)
    )
    lines.append(f"  {legend}")
    return "\n".join(lines)
