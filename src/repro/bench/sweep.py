"""Single-configuration runners used by all benchmark sweeps.

Each runner executes one system on one dataset and returns a
:class:`SweepResult` bundling recall, wall-clock, the system's work
counters and modeled cycles - one row of a benchmark table.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.baselines.ivf import IVFConfig, IVFFlatIndex
from repro.bench.costmodel import ivf_cycles, wknng_cycles
from repro.core.builder import WKNNGBuilder
from repro.core.config import BuildConfig
from repro.core.graph import KNNGraph
from repro.kernels.counters import OpCounters
from repro.kernels.tiled import DEFAULT_TILE_SIZE


@dataclass
class SweepResult:
    """One measured (system, configuration, dataset) point."""

    system: str
    recall: float
    seconds: float
    modeled_cycles: int
    graph: KNNGraph
    params: dict[str, Any] = field(default_factory=dict)
    detail: dict[str, Any] = field(default_factory=dict)

    def row(self) -> dict[str, Any]:
        out = {
            "system": self.system,
            "recall": round(self.recall, 4),
            "seconds": self.seconds,
            "modeled_mcycles": self.modeled_cycles / 1e6,
        }
        out.update(self.params)
        return out


def run_wknng(
    x: np.ndarray,
    exact_ids: np.ndarray,
    config: BuildConfig,
) -> SweepResult:
    """Build a w-KNNG graph and measure recall/time/modeled cycles."""
    builder = WKNNGBuilder(config)
    t0 = time.perf_counter()
    graph, report = builder.build(x, return_report=True)
    seconds = time.perf_counter() - t0
    counters = OpCounters(**{
        key: report.counters.get(key, 0)
        for key in OpCounters().as_dict()
    })
    tile = config.strategy_kwargs.get("tile_size", DEFAULT_TILE_SIZE)
    # graph.meta carries the *resolved* strategy (handles strategy="auto")
    strategy = graph.meta.get("strategy", config.strategy)
    cycles = wknng_cycles(
        strategy,
        counters,
        dim=x.shape[1],
        k=config.k,
        leaf_size=config.leaf_size,
        tile_size=tile,
    )
    from repro.metrics.recall import knn_recall

    return SweepResult(
        system=f"w-knng/{strategy}",
        recall=knn_recall(graph.ids, exact_ids),
        seconds=seconds,
        modeled_cycles=cycles.total,
        graph=graph,
        params={
            "strategy": strategy,
            "n_trees": config.n_trees,
            "leaf_size": config.leaf_size,
            "refine_iters": config.refine_iters,
        },
        detail={
            "cycles": cycles.as_dict(),
            "counters": counters.as_dict(),
            "report": report.as_dict(),
        },
    )


def run_index(
    x: np.ndarray,
    exact_ids: np.ndarray,
    k: int,
    index,
    name: str | None = None,
    ef: int | None = None,
) -> SweepResult:
    """Measure any :class:`~repro.baselines.KNNIndex` engine on the KNNG task.

    Drives the engine purely through the protocol surface (``fit`` /
    ``query`` / ``stats``): fits on ``x``, queries ``x`` back with ``k+1``
    and strips each row's self-match - the KNNG convention - so exact,
    IVF and graph-based engines are all comparable through one code path.
    ``ef`` is handed to ``query`` unchanged (the protocol's per-call
    quality dial; each engine maps it onto its own effort knob).
    ``modeled_cycles`` is 0 (the GPU cost model is system-specific; use
    :func:`run_wknng` / :func:`run_ivf` where it applies).
    """
    n = x.shape[0]
    t0 = time.perf_counter()
    index.fit(x)
    fit_seconds = time.perf_counter() - t0
    t1 = time.perf_counter()
    ids, dists = index.query(x, min(k + 1, n), ef=ef)
    query_seconds = time.perf_counter() - t1
    # drop self-matches, keep order, truncate to k
    rows = np.arange(n, dtype=ids.dtype)[:, None]
    not_self = ids != rows
    order = np.argsort(~not_self, axis=1, kind="stable")[:, :k]
    out_ids = np.take_along_axis(ids, order, axis=1)
    out_dists = np.take_along_axis(dists, order, axis=1)
    stats = dict(index.stats())
    engine = name or stats.pop("engine", type(index).__name__)
    from repro.metrics.recall import knn_recall

    return SweepResult(
        system=engine,
        recall=knn_recall(out_ids, exact_ids[:, :k]),
        seconds=fit_seconds + query_seconds,
        modeled_cycles=0,
        graph=KNNGraph(ids=out_ids, dists=out_dists,
                       meta={"algorithm": engine, "via": "KNNIndex"}),
        params={"engine": engine, "k": k, "ef": ef},
        detail={
            "fit_seconds": fit_seconds,
            "query_seconds": query_seconds,
            "stats": stats,
        },
    )


def run_ivf(
    x: np.ndarray,
    exact_ids: np.ndarray,
    k: int,
    ivf_config: IVFConfig,
    nprobe: int | None = None,
    index: IVFFlatIndex | None = None,
) -> SweepResult:
    """Build (or reuse) an IVF index, run its KNNG mode, and measure.

    Passing a pre-fitted ``index`` isolates search cost for nprobe sweeps;
    training time is then excluded (recorded in ``detail``).
    """
    t0 = time.perf_counter()
    if index is None:
        index = IVFFlatIndex(ivf_config).fit(x)
    train_seconds = time.perf_counter() - t0
    t1 = time.perf_counter()
    graph = index.knn_graph(k, nprobe=nprobe)
    search_seconds = time.perf_counter() - t1
    cycles = ivf_cycles(index.last_search_stats, dim=x.shape[1], k=k)
    from repro.metrics.recall import knn_recall

    effective_nprobe = nprobe if nprobe is not None else ivf_config.nprobe
    return SweepResult(
        system="ivf-flat",
        recall=knn_recall(graph.ids, exact_ids),
        seconds=train_seconds + search_seconds,
        modeled_cycles=cycles.total,
        graph=graph,
        params={"n_lists": index.n_lists, "nprobe": effective_nprobe},
        detail={
            "cycles": cycles.as_dict(),
            "search_stats": dict(index.last_search_stats),
            "train_seconds": train_seconds,
            "search_seconds": search_seconds,
        },
    )
