"""Benchmark harness: cost model, recall matching, sweeps, workloads.

The harness produces every table and figure listed in DESIGN.md.  Two
performance currencies are reported throughout:

* **wall-clock seconds** of the vectorised backend - real, but reflecting
  NumPy/BLAS constants rather than GPU constants;
* **modeled GPU cycles** (:mod:`repro.bench.costmodel`) - the strategies'
  operation counters priced with the SIMT device model, which is the
  apples-to-apples currency for strategy-vs-strategy and w-KNNG-vs-IVF
  comparisons (the quantities the paper's speedups are made of).
"""

from repro.bench.costmodel import (
    CycleBreakdown,
    bruteforce_cycles,
    ivf_cycles,
    wknng_cycles,
)
from repro.bench.match import match_ivf_recall, match_wknng_recall, MatchResult
from repro.bench.sweep import run_wknng, run_ivf, SweepResult
from repro.bench.workloads import WORKLOADS, Workload, get_workload

__all__ = [
    "CycleBreakdown",
    "bruteforce_cycles",
    "ivf_cycles",
    "wknng_cycles",
    "match_ivf_recall",
    "match_wknng_recall",
    "MatchResult",
    "run_wknng",
    "run_ivf",
    "SweepResult",
    "WORKLOADS",
    "Workload",
    "get_workload",
]
