"""Named benchmark workloads (dataset x size x dimensionality x k).

Benchmarks refer to workloads by name so every experiment draws from the
same, seeded data definitions.  Sizes default to laptop scale; the ``scale``
multiplier lets CI run the same suite smaller.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.data.synthetic import make_dataset
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Workload:
    """A reproducible benchmark input.

    ``dataset`` names a :data:`repro.data.synthetic.DATASETS` generator;
    ``params`` are forwarded to it (e.g. ``dim``).
    """

    name: str
    dataset: str
    n: int
    k: int
    seed: int = 1234
    params: dict[str, Any] = field(default_factory=dict)

    def materialize(self, scale: float = 1.0) -> np.ndarray:
        """Generate the points (``scale`` shrinks/grows ``n``).

        The pseudo-parameter ``points_per_cluster`` resolves to
        ``n_clusters = n / points_per_cluster`` at materialisation time, so
        a clustered workload keeps the *same local geometry* (cluster
        population, hence the ratio of neighbour distance to cluster
        radius) at every scale - without it, growing ``n`` over a fixed
        cluster set makes the problem progressively easier for
        single-partition indexes.
        """
        n = max(self.k + 2, int(round(self.n * scale)))
        params = dict(self.params)
        density = params.pop("points_per_cluster", None)
        if density is not None:
            params["n_clusters"] = max(4, n // int(density))
        return make_dataset(self.dataset, n, seed=self.seed, **params)


#: the canonical workloads the experiment suite runs on.
#: The clustered sets use *overlapping* mixtures (cluster_std comparable to
#: the centre spread): true neighbour sets then straddle any single space
#: partition's cell boundaries, which is the regime real descriptor data
#: lives in and the one where accuracy dials (nprobe / forest size) matter.
WORKLOADS: dict[str, Workload] = {
    w.name: w
    for w in [
        # T1 regimes: low / mid / high dimensionality, clustered
        Workload("clustered-16d", "gaussian", n=20_000, k=16,
                 params={"dim": 16, "points_per_cluster": 20,
                         "cluster_std": 2.0, "center_scale": 3.0}),
        Workload("clustered-128d", "gaussian", n=20_000, k=16,
                 params={"dim": 128, "points_per_cluster": 20,
                         "cluster_std": 2.0, "center_scale": 3.0}),
        Workload("sift-like-128d", "sift-like", n=20_000, k=16,
                 params={"points_per_cluster": 20, "cluster_std": 18.0,
                         "center_scale": 35.0}),
        Workload("gist-like-960d", "gist-like", n=10_000, k=16),
        # the structure-free adversarial case
        Workload("uniform-16d", "uniform", n=20_000, k=16, params={"dim": 16}),
        # manifold case (high ambient, low intrinsic dimension)
        Workload("manifold-256d", "manifold", n=20_000, k=16, params={"dim": 256}),
        # small workloads for the simulator experiments
        Workload("simt-small-8d", "gaussian", n=512, k=8, params={"dim": 8, "n_clusters": 16}),
        Workload("simt-small-64d", "gaussian", n=512, k=8, params={"dim": 64, "n_clusters": 16}),
        Workload("simt-small-256d", "gaussian", n=512, k=8, params={"dim": 256, "n_clusters": 16}),
    ]
}


def get_workload(name: str) -> Workload:
    """Look up a canonical workload by name."""
    try:
        return WORKLOADS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown workload {name!r}; available: {sorted(WORKLOADS)}"
        ) from None
