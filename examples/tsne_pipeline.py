"""t-SNE on top of a w-KNNG graph - the paper's motivating application.

Run:  python examples/tsne_pipeline.py

Embeds a clustered high-dimensional dataset into 2-D.  The K-NN graph
stage (the part this library accelerates) feeds the sparse affinity matrix
of t-SNE; the script prints the stage timing split and a quantitative
quality check (clusters must stay separated in the embedding), and renders
a coarse ASCII scatter plot so there is something to look at without
matplotlib.
"""

import numpy as np

from repro.apps import TSNE, TSNEConfig
from repro.data import gaussian_mixture
from repro.utils.rng import as_generator


def ascii_scatter(points: np.ndarray, labels: np.ndarray, width=72, height=24) -> str:
    """Render labelled 2-D points as a character grid."""
    glyphs = "oxv*#@+%&"
    x = points[:, 0]
    y = points[:, 1]
    gx = ((x - x.min()) / max(np.ptp(x), 1e-9) * (width - 1)).astype(int)
    gy = ((y - y.min()) / max(np.ptp(y), 1e-9) * (height - 1)).astype(int)
    grid = [[" "] * width for _ in range(height)]
    for cx, cy, lab in zip(gx, gy, labels):
        grid[cy][cx] = glyphs[int(lab) % len(glyphs)]
    return "\n".join("".join(row) for row in grid)


def main() -> None:
    rng = as_generator(3)
    n_clusters = 5
    centers = rng.standard_normal((n_clusters, 40)) * 9
    labels = rng.integers(0, n_clusters, 900)
    points = (centers[labels] + rng.standard_normal((900, 40))).astype(np.float32)

    model = TSNE(TSNEConfig(perplexity=25, n_iter=350, exaggeration_iters=120,
                            seed=0))
    embedding = model.fit_transform(points)

    graph_secs = sum(model.knn_graph.meta["report"]["phase_seconds"].values())
    print(f"K-NN graph stage: {graph_secs:.2f}s "
          f"(k={model.knn_graph.k}, n={model.knn_graph.n})")
    print(f"final KL divergence: {model.kl_divergence_:.3f}")

    d = np.sqrt(((embedding[:, None, :] - embedding[None, :, :]) ** 2).sum(-1))
    same = labels[:, None] == labels[None, :]
    np.fill_diagonal(same, False)
    sep = d[~same].mean() / d[same].mean()
    print(f"cluster separation (inter/intra distance): {sep:.2f}x")

    print("\nembedding (each glyph = one cluster):\n")
    print(ascii_scatter(embedding, labels))


if __name__ == "__main__":
    main()
