"""Quickstart: build an approximate K-NN graph and check its quality.

Run:  python examples/quickstart.py

Covers the core public API in ~40 lines: generate data, build the graph
with the default (tiled) strategy, inspect the result object, compare
against exact ground truth, and read the build report.
"""

import numpy as np

from repro import BuildConfig, WKNNGBuilder
from repro.baselines import exact_knn_graph
from repro.data import gaussian_mixture


def main() -> None:
    # 10,000 clustered points in 64 dimensions - a typical ANN workload
    points = gaussian_mixture(10_000, 64, n_clusters=100, seed=42)

    config = BuildConfig(
        k=16,            # neighbours per point
        strategy="tiled",  # "atomic" for low-dimensional data
        n_trees=4,       # random projection forest size
        leaf_size=64,    # candidates per point per tree
        refine_iters=2,  # NN-descent local-join rounds
        seed=0,
    )
    builder = WKNNGBuilder(config)
    graph, report = builder.build(points, return_report=True)

    print(f"graph: {graph}")
    print(f"point 0 neighbours: {graph.neighbors(0)[:8]}...")
    print(f"point 0 distances:  {np.sqrt(graph.dists[0, :8]).round(2)}...")

    # quality versus exact brute force (feasible at this scale)
    exact = exact_knn_graph(points, k=16)
    print(f"recall@16 vs exact: {graph.recall(exact):.4f}")
    print(f"mean distance ratio: {graph.mean_distance() / exact.mean_distance():.4f}")

    # where did the time go?  (also available as graph.report)
    for phase, seconds in report.phase_seconds.items():
        print(f"  {phase:<12s} {seconds * 1e3:8.1f} ms")
    print(f"  distance evaluations per point: "
          f"{report.counters['distance_evals'] / graph.n:.0f} "
          f"(brute force would need {graph.n - 1})")


if __name__ == "__main__":
    main()
