"""GNN-style edge lists and KNN-DBSCAN from one served index.

Run:  python examples/gnn_edges_demo.py

Builds one search index over clustered data, then drives the three
downstream consumers the ``repro.neighbors`` subsystem provides:

* ``knn_graph`` - int64 COO ``(2, E)`` edge lists (row 0 = neighbour /
  source, row 1 = query / target), the message-passing input a GNN
  trainer re-derives every epoch;
* ``radius_graph`` - the same edges cut at a squared-distance radius;
* ``KNNDBSCAN`` - density clustering reduced to the k-NN graph the
  index already maintains.

The edge builders accept any backend - raw points (one-shot build), a
prebuilt graph, the search engine, or a serving client - and return the
same edges, so the demo routes one call through a ``DirectClient`` to
show the served path.
"""

import numpy as np

from repro.apps.search import GraphSearchIndex, SearchConfig
from repro.core.config import BuildConfig
from repro.neighbors import DBSCANConfig, KNNDBSCAN, knn_graph, radius_graph
from repro.serve import DirectClient
from repro.utils.rng import as_generator


def main() -> None:
    rng = as_generator(7)
    n_blobs, per_blob, dim = 6, 300, 16
    centers = rng.standard_normal((n_blobs, dim)) * 6
    truth = np.repeat(np.arange(n_blobs), per_blob)
    x = (centers[truth] + 0.5 * rng.standard_normal((truth.size, dim))).astype(
        np.float32
    )
    n = x.shape[0]

    index = GraphSearchIndex.build(
        x,
        build_config=BuildConfig(k=16, strategy="tiled", seed=0),
        search_config=SearchConfig(ef=64),
        seed=0,
    )

    # k-NN edges for message passing: every point gets its k nearest
    # non-self neighbours, ordered by query then ascending distance
    k = 8
    edges, dists = knn_graph(x, k, backend=index, return_dists=True)
    print(f"knn_graph(k={k}): edge_index {edges.shape}, "
          f"mean edge length^2 {dists.mean():.3f}")
    assert edges.shape == (2, n * k)

    # the corpus k-NN rows already live in the index's graph: extracting
    # edges from it skips the search entirely (fastest path for x ==
    # corpus).  Graph rows and beam-search answers are two
    # approximations of the same exact edge set, so compare by overlap
    graph_edges = knn_graph(None, k, backend=index.graph)
    overlap = np.intersect1d(
        graph_edges[0] * n + graph_edges[1], edges[0] * n + edges[1]
    ).size / edges.shape[1]
    print(f"graph-backed extraction: {graph_edges.shape[1]} edges, "
          f"{overlap:.1%} overlap with the searched edges")

    # radius edges: same API, cut on exact squared distance; a ball
    # holding more than max_num_neighbors points is truncated to the
    # nearest ones
    r = float(np.quantile(dists, 0.5))
    r_edges = radius_graph(x, r, max_num_neighbors=k, backend=index)
    print(f"radius_graph(r={r:.3f}): {r_edges.shape[1]} edges "
          f"({r_edges.shape[1] / edges.shape[1]:.0%} of the k-NN edges)")

    # the served path: the same edges through a SearchClient frontend
    with DirectClient(index, ef=64) as client:
        served = knn_graph(x, k, backend=client)
    print(f"served path (DirectClient): identical="
          f"{np.array_equal(served, edges)}")

    # KNN-DBSCAN over the same graph: eps from the observed edge-length
    # scale, clusters compared against the generating blobs
    eps = float(np.quantile(dists, 0.9))
    model = KNNDBSCAN(DBSCANConfig(eps=eps, min_pts=5, knn_k=16))
    labels = model.fit_predict(index.graph)
    agree = 0
    for c in range(model.n_clusters_):
        members = truth[labels == c]
        if members.size:
            agree += int((members == np.bincount(members).argmax()).sum())
    print(f"knn-dbscan(eps={eps:.3f}): {model.n_clusters_} clusters, "
          f"{int((labels == -1).sum())} noise points, "
          f"majority-label agreement {agree / n:.1%}")


if __name__ == "__main__":
    main()
