"""Similarity search service: RP-forest routing + greedy graph walks.

Run:  python examples/similarity_search.py

Builds a search index over a SIFT-like descriptor collection, then answers
out-of-sample queries by routing each query down the retained RP trees to
seed candidates and refining with best-first expansion over the K-NN
graph (the HNSW-style search pattern).  Prints the recall/latency trade-off
across beam widths (``ef``) against exact brute force.
"""

import time

import numpy as np

from repro.apps import GraphSearchIndex, SearchConfig
from repro.baselines import BruteForceKNN
from repro.core import BuildConfig
from repro.data import sift_like


def main() -> None:
    base = sift_like(8000, seed=10)
    rng = np.random.default_rng(11)
    # out-of-sample queries: perturbed database descriptors
    queries = base[rng.choice(len(base), 100, replace=False)]
    queries = np.clip(queries + rng.normal(0, 4, queries.shape), 0, 255)
    queries = queries.astype(np.float32)

    print("building index (w-KNNG graph + RP forest)...")
    t0 = time.perf_counter()
    build = BuildConfig(k=16, strategy="tiled", n_trees=6, leaf_size=64,
                        refine_iters=2, seed=0)
    index = GraphSearchIndex.build(base, build_config=build)
    print(f"  built in {time.perf_counter() - t0:.2f}s")

    gt_ids, _ = BruteForceKNN(base).search(queries, 10)

    print(f"\n{'ef':>5s} | {'recall@10':>9s} | {'ms/query':>9s}")
    print("-" * 31)
    for ef in (8, 16, 32, 64, 128):
        index.config = SearchConfig(ef=ef, seeds_per_tree=4)
        t0 = time.perf_counter()
        ids, _ = index.search(queries, 10)
        ms = (time.perf_counter() - t0) / len(queries) * 1e3
        recall = np.mean([
            len(set(a.tolist()) & set(b.tolist())) / 10
            for a, b in zip(ids, gt_ids)
        ])
        print(f"{ef:5d} | {recall:9.3f} | {ms:9.2f}")
    print("\n(recall climbs with the beam width ef, like efSearch in HNSW)")


if __name__ == "__main__":
    main()
