"""Compressed memory tier: quantized vectors, ADC scoring, exact rerank.

Run:  python examples/quant_demo.py

Builds one graph index and serves it from three vector tiers — full
float32, scalar-quantized (``sq8``) and product-quantized (``pq8``) —
sharing the same graph and forest.  The demo shows:

* the memory ledger: uint8 codes shrink the vector store 4x (sq8) to
  ``4d/M``x (pq) while the graph walk still works;
* recall against exact brute force barely moves — the quantized codes
  only steer the walk, they never score the final answer;
* emitted distances are bit-for-bit full precision for every tier,
  because the top beam is re-ranked against the float32 vectors.
"""

import numpy as np

from repro.apps.search import GraphSearchIndex, SearchConfig
from repro.baselines.bruteforce import BruteForceKNN
from repro.data import gaussian_mixture
from repro.kernels.distance import sq_l2_query_gather


def recall(ids: np.ndarray, gt: np.ndarray) -> float:
    k = gt.shape[1]
    return float(np.mean([
        np.intersect1d(ids[i], gt[i]).size / k for i in range(ids.shape[0])
    ]))


def main() -> None:
    n, d, k = 4000, 32, 10
    x = gaussian_mixture(n, d, n_clusters=16, seed=0)
    queries = gaussian_mixture(200, d, n_clusters=16, seed=1)
    gt, _ = BruteForceKNN(x).search(queries, k)

    print(f"building graph index over {n} points (d={d})...")
    base = GraphSearchIndex.build(
        x, k=16, search_config=SearchConfig(ef=128), seed=0
    )

    print(f"\n{'tier':>8}  {'vector MB':>10}  {'reduction':>9}  "
          f"{'recall@10':>9}  {'rerank evals':>12}")
    for spec in ("none", "sq8", "pq8"):
        if spec == "none":
            index = base
        else:
            # same graph + forest, different vector tier
            index = GraphSearchIndex.from_parts(
                x, base.graph, base.forest,
                SearchConfig(ef=128, quantization=spec),
            )
        ids, dists = index.search(queries, k)
        mem = index.memory_stats()
        stats = index.stats()
        print(f"{spec:>8}  {mem['vector_bytes'] / 1e6:>10.2f}  "
              f"{mem['reduction']:>8.1f}x  {recall(ids, gt):>9.4f}  "
              f"{stats['rerank_evals']:>12d}")

        # emitted distances are exact regardless of tier: recompute the
        # returned pairs against the full-precision vectors
        exact = sq_l2_query_gather(
            index._prepare_queries(queries), index._engine._x,
            ids.astype(np.int64),
        )
        assert np.allclose(dists, exact, rtol=1e-5, atol=1e-5)

    print("\nall emitted distances verified exact against float32 vectors")
    print("(quantized codes steer the walk; the rerank stage scores it)")


if __name__ == "__main__":
    main()
