"""Online mutable index: serving never sees a half-updated graph.

Run:  python examples/churn_demo.py

Builds a :class:`~repro.core.MutableIndex` (epoch-versioned
copy-on-write snapshots), serves it through ``KNNServer``, and applies
a burst of insert/delete batches while queries are in flight.  The
demo shows:

* every mutation is one atomic epoch flip (insert, delete, and
  delete-that-compacts alike);
* deleted points are never served, even from the warm result cache —
  the cache keys on the epoch, so a flip makes every old entry
  structurally unreachable;
* a snapshot pinned before the churn still answers bit-identically
  after it — readers are never torn.
"""

import numpy as np

from repro.apps.search import SearchConfig
from repro.core import BuildConfig, MutableConfig, MutableIndex
from repro.serve import (
    AdmissionPolicy,
    CachePolicy,
    ChurnReport,
    KNNServer,
    ServeConfig,
    churn_loop,
)


def main() -> None:
    from repro.data import gaussian_mixture

    x = gaussian_mixture(4000, 24, n_clusters=16, seed=0)
    base, pool = x[:3000], x[3000:]
    k = 10

    print("building mutable index over 3000 points...")
    mut = MutableIndex.build(
        base,
        BuildConfig(k=16, strategy="tiled", seed=0),
        SearchConfig(ef=48),
        MutableConfig(compact_threshold=0.15),
    )
    cfg = ServeConfig(
        admission=AdmissionPolicy(max_batch=32, max_wait_ms=1.0),
        cache=CachePolicy(size=512),
        ef=48,
    )

    with KNNServer(mut, cfg) as server:
        q = base[7]
        pinned = mut.snapshot                 # a reader holds epoch 0
        before = server.query(q, k, timeout=30.0)
        warm = server.query(q, k, timeout=30.0)
        print(f"\n[1] epoch {before.epoch}: ids={before.ids.tolist()}")
        print(f"    repeat hit the cache: from_cache={warm.from_cache}")

        # -- delete this query's own nearest neighbour -------------------------
        victim = int(before.ids[0])
        mut.delete(np.array([victim]))
        after = server.query(q, k, timeout=30.0)
        print(f"\n[2] deleted id {victim} -> epoch {after.epoch}")
        print(f"    re-query from_cache={after.from_cache} "
              f"(old epoch's entry is unreachable)")
        print(f"    victim served again: {victim in after.ids.tolist()}")

        # -- a burst of sustained churn while queries flow ---------------------
        report = ChurnReport()
        churn_loop(mut, pool, ops_per_sec=200.0, duration_s=1.5,
                   batch_size=32, delete_fraction=0.45, seed=3,
                   report=report)
        res = server.query(q, k, timeout=30.0)
        stats = mut.stats()
        print(f"\n[3] churn: {report.ops} batches "
              f"(+{report.inserted} / -{report.deleted} points), "
              f"{report.flips} epoch flips, "
              f"{stats['compactions']} compactions")
        print(f"    serving at epoch {res.epoch}, n_live={stats['n_live']}, "
              f"tombstones={stats['tombstone_fraction']:.1%}")
        stale = [int(i) for i in res.ids
                 if report.deleted_at.get(int(i), 1 << 62) <= res.epoch]
        print(f"    deleted ids in the response: {stale}")

        # -- the pinned epoch-0 snapshot is still intact -----------------------
        ids0, _ = pinned.search(q[None, :], k)
        print(f"\n[4] pinned epoch-{pinned.epoch} snapshot after "
              f"{mut.epoch} flips:")
        print(f"    bit-identical to pre-churn answer: "
              f"{np.array_equal(ids0[0], before.ids)}")

    print("\ndone.")


if __name__ == "__main__":
    main()
