"""Sharded serving cluster: scatter-gather search that survives a kill.

Run:  python examples/cluster_demo.py

Partitions a corpus across 2 shards with 2 replica workers each, serves
queries through the same ``SearchClient`` interface as ``KNNServer``,
then kills a replica cold and shows the answers do not change: every
replica of a shard is built from the same index, so failover degrades
capacity, never correctness.
"""

import numpy as np

from repro.core import BuildConfig
from repro.data import gaussian_mixture
from repro.serve import ClusterClient, ClusterConfig, closed_loop


def main() -> None:
    x = gaussian_mixture(4000, 24, n_clusters=16, seed=0)
    rng = np.random.default_rng(1)
    queries = x[rng.choice(len(x), 64, replace=False)]
    k = 10

    print("building 2-shard x 2-replica cluster...")
    client = ClusterClient.build(
        x,
        build_config=BuildConfig(k=16, strategy="tiled", seed=0),
        config=ClusterConfig(n_shards=2, n_replicas=2,
                             heartbeat_interval_s=0.1),
    )
    with client:
        print(f"  backend={client.backend}  n={client.n}  "
              f"shards={client.n_shards}")

        # -- one query through the unified SearchClient API --------------------
        res = client.query(queries[0], k, timeout=30.0)
        print(f"\n[1] single query: {k} neighbours from "
              f"{res.shard_fanout} shards in {res.latency_ms:.1f}ms")
        print(f"    ids   = {res.ids.tolist()}")

        # -- remember every answer, then kill a replica ------------------------
        before = [client.query(q, k, timeout=30.0).ids for q in queries]
        client.kill_replica(0, 0)
        after = [client.query(q, k, timeout=30.0).ids for q in queries]
        changed = sum(not np.array_equal(a, b)
                      for a, b in zip(before, after))
        router = client.stats()["router"]
        print(f"\n[2] killed shard 0 / replica 0 mid-flight")
        print(f"    answers changed: {changed}/{len(queries)} "
              f"(replicas are forks of one index - must be 0)")
        print(f"    healthy replicas: {router['healthy_replicas']}/4  "
              f"failovers={router['failovers']}  "
              f"ejections={router['ejections']}")

        # -- it still serves concurrent load on 3 replicas ---------------------
        report = closed_loop(client, queries, k, clients=8, repeat=2)
        print(f"\n[3] closed loop on the degraded cluster: "
              f"{report.throughput_qps:.0f} q/s, "
              f"errors={report.errors}, "
              f"p99={report.percentile_ms(0.99):.1f}ms")

    print("\n(a dead worker costs capacity, not answers)")


if __name__ == "__main__":
    main()
