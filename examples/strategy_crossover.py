"""Reproduce the paper's strategy guidance on your own machine.

Run:  python examples/strategy_crossover.py

Builds the same graph with all three warp-centric maintenance strategies
across a dimensionality sweep and prints the modeled-GPU-cycle comparison,
demonstrating the abstract's claim: *"w-KNNG atomic is more successful
when applied to a smaller number of dimensions, while the tiled w-KNNG
approach was successful in general scenarios for higher dimensional
points."*
"""

from repro.baselines import BruteForceKNN
from repro.bench import run_wknng
from repro.core import BuildConfig
from repro.data import gaussian_mixture

DIMS = (8, 32, 128, 512)
N = 2000
K = 16


def main() -> None:
    header = f"{'dim':>5s} | {'atomic Mcyc':>12s} | {'tiled Mcyc':>11s} | {'baseline Mcyc':>14s} | winner"
    print(header)
    print("-" * len(header))
    for dim in DIMS:
        x = gaussian_mixture(N, dim, n_clusters=32, cluster_std=1.5,
                             center_scale=4.0, seed=1)
        gt, _ = BruteForceKNN(x).search(x, K, exclude_self=True)
        cycles = {}
        for strategy in ("atomic", "tiled", "baseline"):
            cfg = BuildConfig(k=K, strategy=strategy, n_trees=4, leaf_size=64,
                              refine_iters=2, seed=0)
            res = run_wknng(x, gt, cfg)
            cycles[strategy] = res.modeled_cycles / 1e6
        winner = min(cycles, key=cycles.get)
        print(f"{dim:5d} | {cycles['atomic']:12.1f} | {cycles['tiled']:11.1f} "
              f"| {cycles['baseline']:14.1f} | {winner}")
    print("\n(atomic should win the low-dimensional rows, tiled the high ones;")
    print(" baseline - per-point locks - should never win.)")


if __name__ == "__main__":
    main()
