"""Online serving: micro-batched queries with deadlines and overload.

Run:  python examples/serving_demo.py

Builds a search index, stands up a :class:`~repro.serve.KNNServer`, and
drives it through three traffic regimes:

1. closed loop - 16 concurrent clients vs a one-request-per-call
   baseline: the micro-batcher coalesces concurrent submissions into
   wide engine calls, so serving throughput far exceeds the naive rate
   at identical results;
2. repeat traffic - the LRU result cache answers repeated queries in
   microseconds without touching the engine;
3. open-loop overload - requests arrive at ~3x capacity: the server
   sheds the beam width ``ef``, rejects at the admission limit, drops
   expired work, and never returns a success past its deadline.
"""

import time

import numpy as np

from repro.apps import GraphSearchIndex, SearchConfig
from repro.core import BuildConfig
from repro.data import gaussian_mixture
from repro.serve import (
    AdmissionPolicy,
    CachePolicy,
    KNNServer,
    ServeConfig,
    ShedPolicy,
    closed_loop,
    open_loop,
)


def main() -> None:
    x = gaussian_mixture(6000, 24, n_clusters=24, seed=0)
    rng = np.random.default_rng(1)
    queries = x[rng.choice(len(x), 128, replace=False)]
    k = 10

    print("building index...")
    t0 = time.perf_counter()
    index = GraphSearchIndex.build(
        x,
        build_config=BuildConfig(k=16, strategy="tiled", seed=0),
        search_config=SearchConfig(ef=48),
    )
    print(f"  built in {time.perf_counter() - t0:.2f}s")

    # -- 1. closed loop vs one-request-per-call --------------------------------
    t0 = time.perf_counter()
    for q in queries:
        index.search(q[None, :], k)
    seq_qps = len(queries) / (time.perf_counter() - t0)

    server = KNNServer(index, ServeConfig(
        admission=AdmissionPolicy(max_batch=64, max_wait_ms=2.0)))
    with server:
        report = closed_loop(server, queries, k, clients=16, repeat=2)
    print("\n[1] micro-batched serving (16 clients) vs sequential calls")
    print(f"    sequential: {seq_qps:7.0f} q/s")
    print(f"    serving:    {report.throughput_qps:7.0f} q/s "
          f"({report.throughput_qps / seq_qps:.1f}x)  "
          f"p50={report.percentile_ms(0.5):.1f}ms "
          f"p99={report.percentile_ms(0.99):.1f}ms")

    # -- 2. the result cache on repeat traffic ---------------------------------
    server = KNNServer(index, ServeConfig(
        admission=AdmissionPolicy(max_batch=64, max_wait_ms=2.0),
        cache=CachePolicy(size=512)))
    with server:
        closed_loop(server, queries, k, clients=8, collect_ids=False)
        warm = closed_loop(server, queries, k, clients=8, collect_ids=False)
    print("\n[2] repeat traffic through the LRU result cache")
    print(f"    warm pass: {warm.cached}/{warm.ok} served from cache, "
          f"p50={warm.percentile_ms(0.5) * 1000.0:.0f}us, "
          f"{warm.throughput_qps:.0f} q/s")

    # -- 3. open-loop overload: shed, reject, enforce deadlines ----------------
    server = KNNServer(index, ServeConfig(
        admission=AdmissionPolicy(max_batch=32, max_wait_ms=2.0,
                                  queue_limit=64),
        shed=ShedPolicy(high_water=0.4, low_water=0.1, step_up_after=1,
                        min_ef=12),
    ))
    with server:
        rate = max(2000.0, 3.0 * report.throughput_qps)
        storm = open_loop(server, queries, k, rate_qps=rate, duration_s=2.0,
                          deadline_ms=80.0, seed=2)
        alive = server.query(queries[0], k, timeout=30.0)
    print(f"\n[3] open-loop overload at {rate:.0f} req/s, 80ms deadline")
    print(f"    offered={storm.requests}  ok={storm.ok}  "
          f"rejected={storm.rejected}  timeouts={storm.timeouts}  "
          f"shed-served={storm.shed_served}")
    print(f"    p99 of accepted: {storm.percentile_ms(0.99):.1f}ms  "
          f"late successes: {storm.deadline_violations}")
    print(f"    server still answering afterwards: "
          f"{alive.ids.shape[0]} neighbours at ef={alive.served_ef}")
    print("\n(shedding trades a little recall for a lot of latency; the "
          "deadline is a hard promise)")


if __name__ == "__main__":
    main()
