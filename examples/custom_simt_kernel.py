"""Writing your own warp-centric kernel on the SIMT simulator.

Run:  python examples/custom_simt_kernel.py

The simulator is a general substrate, not just the w-KNNG kernels' home.
This example implements a classic GPU exercise - a block-level softmax
over rows of a matrix - warp-for-warp the way a CUDA kernel would do it:

* one block per row, warps striding over columns;
* warp + shared-memory tree reduction for the row maximum (numerical
  stability) and the exponent sum;
* a block barrier between the phases (``yield ctx.barrier()``).

Afterwards the device's metric counters show what the kernel *did* to the
memory system - the same counters experiment F6 uses for the w-KNNG
strategies.
"""

import numpy as np

from repro.simt import Device, DeviceConfig


def softmax_kernel(ctx, x, out, n_cols, stride):
    """Row softmax: one block per row, block_warps warps stride the columns."""
    row = ctx.block_id
    lane = ctx.lane_id
    w = ctx.warp_size
    warp_span = ctx.block_warps * w
    scratch = ctx.shared("scratch", (ctx.block_warps,), np.float64)

    # --- phase 1: row maximum ------------------------------------------------
    local_max = np.full(w, -np.inf)
    for base in range(ctx.warp_id * w, n_cols, warp_span):
        mask = (base + lane) < n_cols
        vals = ctx.load(x, row * stride + base + lane, mask)
        ctx.alu(1)
        local_max = np.maximum(local_max, np.where(mask, vals, -np.inf))
    warp_max = ctx.reduce_max(local_max)
    ctx.shared_store(scratch, np.full(w, ctx.warp_id), np.float64(warp_max),
                     lane == 0)
    yield ctx.barrier()
    block_max = float(scratch.max())  # every warp reads the reduced scratch
    ctx.alu(ctx.block_warps)
    # second barrier: phase 2 reuses `scratch`, so every warp must finish
    # reading the maxima before any warp overwrites them (the classic
    # read-then-sync shared-memory pattern)
    yield ctx.barrier()

    # --- phase 2: exponent sum -------------------------------------------------
    local_sum = np.zeros(w)
    for base in range(ctx.warp_id * w, n_cols, warp_span):
        mask = (base + lane) < n_cols
        vals = ctx.load(x, row * stride + base + lane, mask)
        ctx.alu(2)
        local_sum += np.where(mask, np.exp(vals - block_max), 0.0)
    warp_sum = ctx.reduce_sum(local_sum)
    ctx.shared_store(scratch, np.full(w, ctx.warp_id), np.float64(warp_sum),
                     lane == 0)
    yield ctx.barrier()
    block_sum = float(scratch.sum())
    ctx.alu(ctx.block_warps)

    # --- phase 3: normalise and write back ----------------------------------------
    for base in range(ctx.warp_id * w, n_cols, warp_span):
        mask = (base + lane) < n_cols
        vals = ctx.load(x, row * stride + base + lane, mask)
        ctx.alu(2)
        result = np.exp(vals - block_max) / block_sum
        ctx.store(out, row * stride + base + lane,
                  result.astype(np.float32), mask)


def main() -> None:
    rng = np.random.default_rng(0)
    rows, cols = 8, 150
    x = rng.standard_normal((rows, cols)).astype(np.float32) * 3

    dev = Device(DeviceConfig())
    xbuf = dev.to_device(x.reshape(-1), "x")
    obuf = dev.empty((rows * cols,), np.float32, "out")
    dev.launch(softmax_kernel, grid_blocks=rows, block_warps=2,
               args=(xbuf, obuf, cols, cols))

    result = obuf.to_host().reshape(rows, cols)
    expected = np.exp(x - x.max(1, keepdims=True))
    expected /= expected.sum(1, keepdims=True)
    err = np.abs(result - expected).max()
    print(f"max |simulated - numpy| = {err:.2e}")
    assert err < 1e-5

    m = dev.metrics
    print("\nwhat the kernel cost (device counters):")
    for key, val in m.as_dict().items():
        if val:
            print(f"  {key:<28s} {val}")
    print(f"\nestimated cycles: {m.estimated_cycles(dev.config):,}")


if __name__ == "__main__":
    main()
