"""Streaming ingestion: keep a K-NN graph current as points arrive.

Run:  python examples/streaming_updates.py

Builds a graph over an initial batch, then feeds arrival batches through
:class:`repro.core.update.DynamicKNNG` - each batch is routed through the
retained RP forest, inserted under the configured warp-centric strategy,
and repaired with one targeted local-join round.  After every batch the
script measures recall of the *whole* graph against exact ground truth,
showing quality holding steady while the graph triples in size.
"""

import time

import numpy as np

from repro.baselines import BruteForceKNN
from repro.core import BuildConfig
from repro.core.update import DynamicKNNG
from repro.data import gaussian_mixture
from repro.metrics.recall import knn_recall


def main() -> None:
    k = 10
    all_points = gaussian_mixture(6000, 32, n_clusters=60, cluster_std=1.2,
                                  center_scale=4.0, seed=12)
    initial, stream = all_points[:2000], all_points[2000:]

    t0 = time.perf_counter()
    dyn = DynamicKNNG.build(
        initial,
        BuildConfig(k=k, strategy="auto", n_trees=4, leaf_size=64,
                    refine_iters=2, seed=0),
    )
    print(f"initial build: n={dyn.n} in {time.perf_counter() - t0:.2f}s")

    print(f"\n{'batch':>6s} | {'n':>6s} | {'recall':>7s} | {'add ms':>7s} | growth")
    print("-" * 48)
    batch_size = 500
    for b, start in enumerate(range(0, stream.shape[0], batch_size)):
        batch = stream[start:start + batch_size]
        t0 = time.perf_counter()
        dyn.add(batch)
        add_ms = (time.perf_counter() - t0) * 1e3
        graph = dyn.snapshot()
        current = all_points[: dyn.n]
        gt, _ = BruteForceKNN(current).search(current, k, exclude_self=True)
        recall = knn_recall(graph.ids, gt)
        print(f"{b:6d} | {dyn.n:6d} | {recall:7.4f} | {add_ms:7.0f} "
              f"| {dyn.growth_factor:.2f}x")

    print("\n(growth_factor ~2x is the usual rebuild trigger; recall holds")
    print(" because every batch is routed + locally repaired)")


if __name__ == "__main__":
    main()
