"""Semi-supervised learning on a w-KNNG graph: label 2% -> classify 100%.

Run:  python examples/label_propagation.py

Generates a clustered dataset, hides all but a handful of labels, builds
the K-NN graph, and diffuses the seed labels along its edges.  Also embeds
the graph spectrally and reports how the two graph consumers (label
propagation, Laplacian eigenmaps) behave on the same structure.
"""

import numpy as np

from repro import BuildConfig, WKNNGBuilder
from repro.apps import (
    LabelPropConfig,
    LabelPropagation,
    SpectralConfig,
    SpectralEmbedding,
)
from repro.utils.rng import as_generator


def main() -> None:
    rng = as_generator(4)
    n_classes, per_class = 5, 400
    centers = rng.standard_normal((n_classes, 24)) * 6
    labels = np.repeat(np.arange(n_classes), per_class)
    x = (centers[labels] + rng.standard_normal((n_classes * per_class, 24))).astype(
        np.float32
    )
    n = x.shape[0]

    graph = WKNNGBuilder(BuildConfig(k=10, n_trees=4, leaf_size=48,
                                     refine_iters=2, seed=0)).build(x)
    print(f"graph: {graph}")

    # hide labels: keep 8 seeds per class (2% of the data)
    seeds = np.full(n, -1)
    for c in range(n_classes):
        members = np.flatnonzero(labels == c)
        seeds[rng.choice(members, 8, replace=False)] = c
    print(f"seeds: {int((seeds >= 0).sum())} of {n} points labelled")

    lp = LabelPropagation(graph, LabelPropConfig(alpha=0.9))
    predicted = lp.fit_predict(seeds)
    accuracy = float((predicted == labels).mean())
    print(f"label propagation accuracy: {accuracy:.4f} "
          f"({lp.n_iter_} diffusion iterations)")

    emb = SpectralEmbedding(SpectralConfig(n_components=2)).fit_transform(graph)
    d = ((emb[:, None, :] - emb[None, :, :]) ** 2).sum(-1)
    same = labels[:, None] == labels[None, :]
    np.fill_diagonal(same, False)
    sep = float(d[~same].mean() / max(d[same].mean(), 1e-12))
    print(f"spectral embedding inter/intra separation: {sep:.1f}x")


if __name__ == "__main__":
    main()
