"""Legacy setup shim.

The environment used for development has no network access and no ``wheel``
package, so PEP 660 editable installs (which build a wheel) fail.  This shim
lets ``pip install -e . --no-use-pep517 --no-build-isolation`` take the
legacy egg-link path.  All metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()
